// Scalar reference backend: the Algorithm-4 column loop exactly as it lived
// inside Backprojector::run_proposed before the backend split. Every
// floating-point operation is performed in the same order, so volumes are
// bitwise-identical to the historical kernel — this backend is the ground
// truth the vector backends are tested against.
#include <array>
#include <cstddef>

#include "backproj/interp2.h"
#include "backproj/simd/column_kernel.h"

namespace ifdk::bp::simd {

namespace {

/// Inner product of a P row (4 floats) with (i, j, k, 1) — the unit of work
/// the paper counts when it states the 1/6 reduction.
inline float dot_row(const float* row, float i, float j, float k) {
  return row[0] * i + row[1] * j + row[2] * k + row[3];
}

/// (u, v) in detector coordinates regardless of storage layout.
inline float fetch(const BatchArgs& b, std::size_t s, float u, float v) {
  if (b.transposed) {
    return interp2(b.images[s], b.nv, b.nu, v, u);  // V axis contiguous
  }
  return interp2(b.images[s], b.nu, b.nv, u, v);
}

/// Algorithm 4 lines 6-10 per voxel: hoisted Theorem-2/3 terms when
/// available, the full three inner products otherwise.
inline void voxel_terms(const BatchArgs& b, const ColumnArgs& c,
                        std::size_t s, float fk, float& u, float& f,
                        float& wdis) {
  if (b.reuse_uw) {
    u = c.u_s[s];
    f = c.f_s[s];
    wdis = c.w_s[s];
    return;
  }
  const float* m = b.pmat[s].data();
  const float x = dot_row(m + 0, c.fi, c.fj, fk);
  const float z = dot_row(m + 8, c.fi, c.fj, fk);
  f = 1.0f / z;
  u = x * f;
  wdis = f * f;
}

void run_column(const BatchArgs& b, const ColumnArgs& c) {
  for (std::size_t t = c.t_begin; t < c.t_end; ++t) {
    const float fk = static_cast<float>(b.k0 + t);  // global k index
    float acc = 0.0f, acc_m = 0.0f;
    for (std::size_t s = 0; s < b.count; ++s) {
      float u, f, wdis;
      voxel_terms(b, c, s, fk, u, f, wdis);
      // Algorithm 4 line 12: the single remaining inner product.
      const float y = dot_row(b.pmat[s].data() + 4, c.fi, c.fj, fk);
      const float v = y * f;
      acc += wdis * fetch(b, s, u, v);
      if (b.symmetry) {
        // Lines 15-17: the Theorem-1 mirror voxel shares u and Wdis.
        acc_m += wdis * fetch(b, s, u, b.v_mirror - v);
      }
    }
    c.col[t] += acc;
    if (b.symmetry) c.col[b.nzl - 1 - t] += acc_m;
  }

  if (c.do_center) {
    // Center plane: its mirror is itself; update once without the
    // symmetric twin.
    const float fk = static_cast<float>(b.center);
    float acc = 0.0f;
    for (std::size_t s = 0; s < b.count; ++s) {
      float u, f, wdis;
      voxel_terms(b, c, s, fk, u, f, wdis);
      const float y = dot_row(b.pmat[s].data() + 4, c.fi, c.fj, fk);
      acc += wdis * fetch(b, s, u, y * f);
    }
    c.col[b.center] += acc;
  }
}

}  // namespace

const ColumnKernel& scalar_kernel() {
  static constexpr ColumnKernel kernel{"scalar", run_column};
  return kernel;
}

}  // namespace ifdk::bp::simd
