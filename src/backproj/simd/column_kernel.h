// SIMD backend layer for the Algorithm-4 back-projection kernel.
//
// The proposed kernel's unit of work is one (i, j) volume column: the
// hoisted Theorem-2/3 terms (u, f, Wdis) are k-independent scalars, and the
// remaining per-k work — one inner product, the bilinear fetch, the
// Theorem-1 mirror fetch, and the two accumulations — streams along the
// contiguous k axis of the Z-major volume and the contiguous v axis of the
// transposed projection row. That is exactly the shape a CPU vector unit
// wants, so the column loop is the backend boundary: run_proposed owns the
// batching / transposition / slab scheduling and calls a ColumnKernel per
// column, and each backend vectorizes the k loop its own way.
//
// Backends:
//   * scalar — straight-line reference, bitwise-identical to the historical
//     in-line loop of Backprojector::run_proposed (every float op in the
//     same order).
//   * avx2 — 8-wide AVX2 over consecutive k values with gathered bilinear
//     fetches. Built only when the toolchain targets x86 and
//     IFDK_DISABLE_AVX2 is off; selected at runtime only when CPUID reports
//     AVX2+FMA. Its arithmetic mirrors the scalar operation sequence lane
//     for lane (no re-association, no FMA contraction in value-affecting
//     ops), so fetch indices and border masks match the scalar kernel
//     exactly and per-voxel results stay within the 4-ULP contract.
#pragma once

#include <array>
#include <cstddef>

namespace ifdk::bp::simd {

/// Which column backend a Backprojector uses. kAuto resolves at runtime to
/// the fastest backend the executing CPU supports.
enum class Backend { kAuto, kScalar, kAvx2 };

const char* to_string(Backend backend);

/// Per-projection-batch constants shared by every column of a pass.
struct BatchArgs {
  /// Projection pixel pointers, one per projection in the batch. Transposed
  /// storage (v contiguous) when `transposed` is set, raw otherwise.
  const float* const* images = nullptr;
  /// Flattened 3x4 projection matrices (P of Eq. 2), one per projection.
  const std::array<float, 12>* pmat = nullptr;
  std::size_t count = 0;  ///< projections in this batch
  std::size_t nu = 0;     ///< detector width (raw layout: contiguous axis)
  std::size_t nv = 0;     ///< detector height (transposed: contiguous axis)
  bool transposed = false;
  bool symmetry = false;  ///< Theorem-1 mirror update (Alg. 4 lines 15-17)
  bool reuse_uw = false;  ///< Theorem-2/3 hoisted terms supplied per column
  float v_mirror = 0.0f;  ///< nv - 1, the mirror axis
  std::size_t k0 = 0;     ///< global k of local pair iteration t = 0
  std::size_t nzl = 0;    ///< local column depth (mirror writes nzl - 1 - t)
  std::size_t center = 0; ///< odd-Nz center plane index (local == global)
};

/// One column of work: pair iterations [t_begin, t_end) of column (i, j).
struct ColumnArgs {
  float fi = 0.0f;
  float fj = 0.0f;
  float* col = nullptr;  ///< column base, nzl contiguous floats
  std::size_t t_begin = 0;
  std::size_t t_end = 0;
  /// This column slice owns the odd center plane (its mirror is itself).
  bool do_center = false;
  /// Hoisted Theorem-2/3 terms, one per projection; valid when reuse_uw.
  const float* u_s = nullptr;
  const float* f_s = nullptr;
  const float* w_s = nullptr;
};

using ColumnFn = void (*)(const BatchArgs&, const ColumnArgs&);

struct ColumnKernel {
  const char* name;
  ColumnFn run;
};

/// The scalar reference backend (always available).
const ColumnKernel& scalar_kernel();

/// True when the AVX2 translation unit was built into this binary.
bool avx2_compiled();

/// True when the AVX2 backend is built in *and* the executing CPU reports
/// AVX2+FMA — i.e. select(Backend::kAvx2) will succeed.
bool avx2_supported();

/// Resolves a backend choice to a kernel. kAuto prefers AVX2 when supported;
/// an explicit kAvx2 request throws ConfigError when unsupported.
const ColumnKernel& select(Backend backend);

}  // namespace ifdk::bp::simd
