// SIMD backend layer for the Algorithm-4 back-projection kernel.
//
// The proposed kernel's unit of work is one (i, j) volume column: the
// hoisted Theorem-2/3 terms (u, f, Wdis) are k-independent scalars, and the
// remaining per-k work — one inner product, the bilinear fetch, the
// Theorem-1 mirror fetch, and the two accumulations — streams along the
// contiguous k axis of the Z-major volume and the contiguous v axis of the
// transposed projection row. That is exactly the shape a CPU vector unit
// wants, so the column loop is the backend boundary: run_proposed owns the
// batching / transposition / slab scheduling and calls a ColumnKernel per
// column, and each backend vectorizes the k loop its own way.
//
// Backend availability and kAuto resolution live in common/simd_dispatch
// (shared with the FFT batch layer); this header only maps the resolved
// Backend enumerator to a column kernel. Backends:
//   * scalar — straight-line reference, bitwise-identical to the historical
//     in-line loop of Backprojector::run_proposed (every float op in the
//     same order).
//   * avx2 — 8-wide AVX2 over consecutive k values with gathered bilinear
//     fetches, plus a scalar tail for the remainder.
//   * avx512 — 16-wide AVX-512 (F+DQ+VL) with masked remainder handling: the
//     final partial iteration runs masked in the vector loop, so there is no
//     scalar tail at all (the odd-Nz center plane is a one-lane masked pass).
//   * neon — 4-wide AArch64 NEON; no gather instruction exists, so the
//     bilinear fetches are per-lane scalar loads inserted into vectors.
// Every vector backend replays the scalar operation sequence lane for lane
// (no re-association, no FMA contraction: the TUs build with
// -ffp-contract=off), so all backends produce bitwise-identical volumes by
// construction — pinned by tests/test_simd_backends.cpp across the whole
// backend matrix.
#pragma once

#include <array>
#include <cstddef>

#include "common/simd_dispatch.h"

namespace ifdk::bp::simd {

/// One Backend enum for every vectorized layer; see common/simd_dispatch.h.
using Backend = ifdk::simd::Backend;
using ifdk::simd::compiled;
using ifdk::simd::supported;
using ifdk::simd::to_string;

/// Per-projection-batch constants shared by every column of a pass.
struct BatchArgs {
  /// Projection pixel pointers, one per projection in the batch. Transposed
  /// storage (v contiguous) when `transposed` is set, raw otherwise.
  const float* const* images = nullptr;
  /// Flattened 3x4 projection matrices (P of Eq. 2), one per projection.
  const std::array<float, 12>* pmat = nullptr;
  std::size_t count = 0;  ///< projections in this batch
  std::size_t nu = 0;     ///< detector width (raw layout: contiguous axis)
  std::size_t nv = 0;     ///< detector height (transposed: contiguous axis)
  bool transposed = false;
  bool symmetry = false;  ///< Theorem-1 mirror update (Alg. 4 lines 15-17)
  bool reuse_uw = false;  ///< Theorem-2/3 hoisted terms supplied per column
  float v_mirror = 0.0f;  ///< nv - 1, the mirror axis
  std::size_t k0 = 0;     ///< global k of local pair iteration t = 0
  std::size_t nzl = 0;    ///< local column depth (mirror writes nzl - 1 - t)
  std::size_t center = 0; ///< odd-Nz center plane index (local == global)
};

/// One column of work: pair iterations [t_begin, t_end) of column (i, j).
struct ColumnArgs {
  float fi = 0.0f;
  float fj = 0.0f;
  float* col = nullptr;  ///< column base, nzl contiguous floats
  std::size_t t_begin = 0;
  std::size_t t_end = 0;
  /// This column slice owns the odd center plane (its mirror is itself).
  bool do_center = false;
  /// Hoisted Theorem-2/3 terms, one per projection; valid when reuse_uw.
  const float* u_s = nullptr;
  const float* f_s = nullptr;
  const float* w_s = nullptr;
};

using ColumnFn = void (*)(const BatchArgs&, const ColumnArgs&);

struct ColumnKernel {
  const char* name;
  ColumnFn run;
};

/// The scalar reference backend (always available).
const ColumnKernel& scalar_kernel();

/// Resolves a backend choice to a kernel via ifdk::simd::resolve: kAuto
/// prefers the widest supported backend; an explicit request for an
/// unavailable backend throws ConfigError.
const ColumnKernel& select(Backend backend);

}  // namespace ifdk::bp::simd
