// NEON backend: the Algorithm-4 column loop vectorized 4-wide over
// consecutive k values for AArch64. The coordinate arithmetic (the per-k
// inner product, the perspective divide, the distance weight) runs in
// vector registers; the bilinear fetch stays per-lane scalar because NEON
// has no gather instruction — each lane's (u, v) is extracted and fed to
// the same interp2 the scalar backend uses, so fetch indexing and border
// handling are identical by construction. The Theorem-1 mirror accumulator
// is lane-reversed (vrev64q + vextq) before its descending store; the
// sub-width tail and the odd center plane run through the scalar reference.
//
// This translation unit is compiled with -ffp-contract=off (AArch64 needs
// no extra arch flag: Advanced SIMD is baseline) and only linked when CMake
// enables it (IFDK_HAVE_NEON). AArch64 NEON float arithmetic is fully
// IEEE-754 compliant (vdivq is a true divide, no flush-to-zero in the
// default fpcr state used by Linux), and the operation order replays the
// scalar backend lane for lane, so per-voxel output is bitwise-identical to
// the scalar backend — pinned by tests/test_simd_backends.cpp.
#include "backproj/simd/column_kernel.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <array>
#include <cstddef>

#include "backproj/interp2.h"

namespace ifdk::bp::simd {

namespace {

/// (u, v) in detector coordinates regardless of storage layout — the exact
/// scalar fetch, applied per lane.
inline float fetch1(const BatchArgs& b, const float* img, float u, float v) {
  if (b.transposed) {
    return interp2(img, b.nv, b.nu, v, u);  // V axis contiguous
  }
  return interp2(img, b.nu, b.nv, u, v);
}

/// Bilinear fetch for 4 k-lanes: no gather on NEON, so extract each lane's
/// coordinates and run the scalar interp2.
inline float32x4_t fetch4(const BatchArgs& b, const float* img, float32x4_t u,
                          float32x4_t v) {
  float us[4], vs[4], r[4];
  vst1q_f32(us, u);
  vst1q_f32(vs, v);
  for (int l = 0; l < 4; ++l) r[l] = fetch1(b, img, us[l], vs[l]);
  return vld1q_f32(r);
}

/// Full lane reversal [0,1,2,3] -> [3,2,1,0]: vrev64q swaps within each
/// 64-bit pair, vextq swaps the pairs.
inline float32x4_t reverse4(float32x4_t x) {
  const float32x4_t half = vrev64q_f32(x);
  return vextq_f32(half, half, 2);
}

void run_column(const BatchArgs& b, const ColumnArgs& c) {
  constexpr std::size_t kWidth = 4;
  const float32x4_t lane = {0.0f, 1.0f, 2.0f, 3.0f};
  const float32x4_t ones = vdupq_n_f32(1.0f);
  const float32x4_t v_mirror = vdupq_n_f32(b.v_mirror);

  std::size_t t = c.t_begin;
  for (; t + kWidth <= c.t_end; t += kWidth) {
    // k0 + t + lane: exact small integers, identical to the scalar casts.
    const float32x4_t fk =
        vaddq_f32(vdupq_n_f32(static_cast<float>(b.k0 + t)), lane);
    float32x4_t acc = vdupq_n_f32(0.0f);
    float32x4_t acc_m = vdupq_n_f32(0.0f);

    for (std::size_t s = 0; s < b.count; ++s) {
      const float* m = b.pmat[s].data();
      float32x4_t u, f, wdis;
      if (b.reuse_uw) {
        u = vdupq_n_f32(c.u_s[s]);
        f = vdupq_n_f32(c.f_s[s]);
        wdis = vdupq_n_f32(c.w_s[s]);
      } else {
        // dot_row associates ((m0*i + m1*j) + m2*k) + m3; the i/j part is
        // k-independent and computed once in scalar, preserving the order.
        const float xij = m[0] * c.fi + m[1] * c.fj;
        const float zij = m[8] * c.fi + m[9] * c.fj;
        const float32x4_t x = vaddq_f32(
            vaddq_f32(vdupq_n_f32(xij), vmulq_f32(vdupq_n_f32(m[2]), fk)),
            vdupq_n_f32(m[3]));
        const float32x4_t z = vaddq_f32(
            vaddq_f32(vdupq_n_f32(zij), vmulq_f32(vdupq_n_f32(m[10]), fk)),
            vdupq_n_f32(m[11]));
        f = vdivq_f32(ones, z);
        u = vmulq_f32(x, f);
        wdis = vmulq_f32(f, f);
      }

      // Algorithm 4 line 12: the single remaining inner product, 4 k's at
      // a time.
      const float yij = m[4] * c.fi + m[5] * c.fj;
      const float32x4_t y = vaddq_f32(
          vaddq_f32(vdupq_n_f32(yij), vmulq_f32(vdupq_n_f32(m[6]), fk)),
          vdupq_n_f32(m[7]));
      const float32x4_t v = vmulq_f32(y, f);

      acc = vaddq_f32(acc, vmulq_f32(wdis, fetch4(b, b.images[s], u, v)));
      if (b.symmetry) {
        const float32x4_t vm = vsubq_f32(v_mirror, v);
        acc_m =
            vaddq_f32(acc_m, vmulq_f32(wdis, fetch4(b, b.images[s], u, vm)));
      }
    }

    float* out = c.col + t;
    vst1q_f32(out, vaddq_f32(vld1q_f32(out), acc));
    if (b.symmetry) {
      // Lanes t..t+3 mirror to nzl-1-t .. nzl-4-t: reverse, then one
      // ascending accumulate-store at the low end of that range.
      const float32x4_t rev = reverse4(acc_m);
      float* mout = c.col + (b.nzl - kWidth - t);
      vst1q_f32(mout, vaddq_f32(vld1q_f32(mout), rev));
    }
  }

  // Sub-width tail and the odd center plane run through the scalar
  // reference (bitwise-identical arithmetic, so the seam is invisible).
  if (t < c.t_end || c.do_center) {
    ColumnArgs tail = c;
    tail.t_begin = t;
    scalar_kernel().run(b, tail);
  }
}

}  // namespace

const ColumnKernel& neon_kernel_impl() {
  static constexpr ColumnKernel kernel{"neon", run_column};
  return kernel;
}

}  // namespace ifdk::bp::simd

#endif  // defined(__aarch64__)
