#include "backproj/slab_schedule.h"

#include <algorithm>
#include <utility>

namespace ifdk::bp {

namespace {

constexpr std::size_t kCacheLine = 64;
/// Below this depth the two rehoisted inner products per column would exceed
/// a few percent of a slab's work.
constexpr std::size_t kMinSlabDepth = 32;

}  // namespace

std::vector<SlabTask> plan_slab_tasks(const SlabPlanParams& params) {
  std::vector<SlabTask> tasks;
  if (params.nx == 0) return tasks;
  const std::size_t threads = std::max<std::size_t>(1, params.num_threads);

  // Depth from the cache budget: each pair step streams, per batched
  // projection, one transposed detector row and its Theorem-1 mirror row —
  // ~2 cache lines of fresh data per step once neighbouring steps share
  // rows — plus the two column voxels it writes.
  const std::size_t bytes_per_t =
      std::max<std::size_t>(1, params.batch) * 2 * kCacheLine +
      2 * sizeof(float);
  std::size_t depth =
      std::max<std::size_t>(1, params.cache_budget_bytes / bytes_per_t);
  if (params.t_count > 0) {
    depth = std::clamp(depth, std::min(kMinSlabDepth, params.t_count),
                       params.t_count);
  }

  std::vector<std::pair<std::size_t, std::size_t>> slabs;
  if (params.t_count == 0) {
    slabs.emplace_back(0, 0);  // degenerate: center-plane-only volumes
  } else {
    // Balanced split: the slab count nearest the cache-derived depth, capped
    // so no slab falls below the minimum depth, then depths equalized (a
    // remainder tail slab would be the schedule's critical-path straggler).
    std::size_t num_slabs = (params.t_count + depth / 2) / depth;
    const std::size_t max_slabs =
        std::max<std::size_t>(1, params.t_count / kMinSlabDepth);
    num_slabs = std::clamp<std::size_t>(num_slabs, 1, max_slabs);
    const std::size_t base = params.t_count / num_slabs;
    const std::size_t extra = params.t_count % num_slabs;
    std::size_t t = 0;
    for (std::size_t n = 0; n < num_slabs; ++n) {
      const std::size_t size = base + (n < extra ? 1 : 0);
      slabs.emplace_back(t, t + size);
      t += size;
    }
  }

  // Split columns until there are a few tasks per worker; never below one
  // column per block.
  const std::size_t target_tasks = threads * 4;
  std::size_t i_blocks = (target_tasks + slabs.size() - 1) / slabs.size();
  i_blocks = std::clamp<std::size_t>(i_blocks, 1, params.nx);
  const std::size_t i_chunk = (params.nx + i_blocks - 1) / i_blocks;

  tasks.reserve(i_blocks * slabs.size());
  for (std::size_t i = 0; i < params.nx; i += i_chunk) {
    const std::size_t i_end = std::min(params.nx, i + i_chunk);
    for (const auto& [t_begin, t_end] : slabs) {
      tasks.push_back(SlabTask{i, i_end, t_begin, t_end});
    }
  }
  return tasks;
}

}  // namespace ifdk::bp
