// Bilinear interpolation with sub-pixel precision (paper Algorithm 3).
//
// Two access flavours are provided: row-major (u contiguous — how raw
// projections are stored) and the transposed flavour (v contiguous — how the
// proposed Algorithm 4 reads its transposed Q~). On the GPU these correspond
// to the texture-fetch and L1/__ldg paths of Table 3; on the CPU they differ
// in stride, which is exactly the locality effect the paper measures.
//
// Samples outside the image contribute 0, matching RTK's border handling.
#pragma once

#include <cmath>
#include <cstddef>

namespace ifdk::bp {

/// interp2 of Algorithm 3 on a row-major image `img` (width w, height h,
/// element (u, v) at v*w + u). (u, v) is the sub-pixel coordinate.
inline float interp2(const float* img, std::size_t w, std::size_t h, float u,
                     float v) {
  // Degenerate images have no samples; without this guard w - 1 underflows
  // on std::size_t and the bound check passes for huge u/v.
  if (w == 0 || h == 0) return 0.0f;
  if (u < 0.0f || v < 0.0f || u > static_cast<float>(w - 1) ||
      v > static_cast<float>(h - 1)) {
    return 0.0f;
  }
  // int(u) truncation per Algorithm 3 line 2. On the last row/column the +1
  // neighbour is clamped (its bilinear weight is zero there), matching the
  // clamp-to-edge addressing of CUDA textures.
  const std::size_t nu = static_cast<std::size_t>(u);
  const std::size_t nv = static_cast<std::size_t>(v);
  const std::size_t nu1 = nu + 1 < w ? nu + 1 : nu;
  const std::size_t nv1 = nv + 1 < h ? nv + 1 : nv;
  const float du = u - static_cast<float>(nu);
  const float dv = v - static_cast<float>(nv);
  const float* r0 = img + nv * w;
  const float* r1 = img + nv1 * w;
  const float t1 = r0[nu] * (1.0f - du) + r0[nu1] * du;
  const float t2 = r1[nu] * (1.0f - du) + r1[nu1] * du;
  return t1 * (1.0f - dv) + t2 * dv;
}

}  // namespace ifdk::bp
