#include "backproj/backprojector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include <cstdint>

#include "backproj/interp2.h"
#include "backproj/simd/column_kernel.h"
#include "backproj/slab_schedule.h"
#include "common/error.h"

namespace ifdk::bp {

namespace {

/// Inner product of a P row (4 floats) with (i, j, k, 1) — the unit of work
/// the paper counts when it states the 1/6 reduction.
inline float dot_row(const float* row, float i, float j, float k) {
  return row[0] * i + row[1] * j + row[2] * k + row[3];
}

/// The AVX2 and AVX-512 backends gather with 32-bit indices; projections
/// beyond this pixel count must take a gather-free path (scalar, or NEON
/// with its per-lane scalar fetches).
constexpr std::size_t kMaxGatherPixels =
    static_cast<std::size_t>(INT32_MAX);

}  // namespace

const char* to_string(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kRtk32:   return "RTK-32";
    case KernelVariant::kBpTex:   return "Bp-Tex";
    case KernelVariant::kTexTran: return "Tex-Tran";
    case KernelVariant::kBpL1:    return "Bp-L1";
    case KernelVariant::kL1Tran:  return "L1-Tran";
  }
  return "?";
}

BpConfig config_for(KernelVariant variant) {
  BpConfig cfg;
  switch (variant) {
    case KernelVariant::kRtk32:
      // The RTK kernel_fdk_3Dgrid scheme: Algorithm 2 with a 32-projection
      // batch, i-major volume, untransposed projections.
      cfg.symmetry = false;
      cfg.reuse_uw = false;
      cfg.transpose_projections = false;
      cfg.layout = VolumeLayout::kXMajor;
      break;
    case KernelVariant::kBpTex:
      // Proposed loop order + transposed volume, but projections are fetched
      // in their raw layout (the GPU texture hides the transposition).
      cfg.transpose_projections = false;
      break;
    case KernelVariant::kTexTran:
    case KernelVariant::kBpL1:
    case KernelVariant::kL1Tran:
      // Full Algorithm 4. On the GPU these three differ only in which cache
      // serves the projection fetches (2D-layered texture vs plain global vs
      // __ldg); on the CPU the memory behaviour is identical.
      break;
  }
  return cfg;
}

Backprojector::Backprojector(const geo::CbctGeometry& geometry,
                             BpConfig config)
    : geometry_(geometry), config_(config) {
  geometry_.validate();
  IFDK_REQUIRE(config_.batch > 0, "batch must be positive");
  if (config_.layout == VolumeLayout::kXMajor) {
    IFDK_REQUIRE(!config_.symmetry && !config_.reuse_uw &&
                     !config_.transpose_projections,
                 "the X-major (standard Algorithm 2) kernel does not support "
                 "the Algorithm 4 optimizations; use kZMajor");
    IFDK_REQUIRE(!config_.slab_mode(),
                 "slab-pair mode requires the proposed (kZMajor) kernel");
  }
  if (config_.slab_mode()) {
    IFDK_REQUIRE(config_.symmetry,
                 "slab-pair mode is defined by the Theorem-1 symmetry");
    IFDK_REQUIRE(config_.k_begin + config_.k_half <= geometry_.nz / 2,
                 "slab pair exceeds the lower half of the volume");
    IFDK_REQUIRE(config_.k_half > 0, "slab pair must be non-empty");
  }

  // Resolve the SIMD column backend once (runtime CPUID dispatch). Oversized
  // projections overflow the x86 gathers' 32-bit indices: auto falls back to
  // the widest gather-free backend (NEON fetches per lane, scalar always
  // works), and an explicit AVX2/AVX-512 request is rejected.
  simd::Backend backend = config_.simd_backend;
  const std::size_t pixels = geometry_.nu * geometry_.nv;
  const bool gather_overflow = pixels > kMaxGatherPixels;
  if (backend == simd::Backend::kAuto && gather_overflow) {
    backend = simd::supported(simd::Backend::kNeon) ? simd::Backend::kNeon
                                                    : simd::Backend::kScalar;
  }
  IFDK_REQUIRE(!gather_overflow || (backend != simd::Backend::kAvx2 &&
                                    backend != simd::Backend::kAvx512),
               "projection exceeds 32-bit gather indexing; use the scalar "
               "or neon backend");
  column_kernel_ = &simd::select(backend);
}

void Backprojector::accumulate(Volume& volume,
                               std::span<const Image2D> projections,
                               std::span<const geo::Mat34> matrices) const {
  IFDK_REQUIRE(projections.size() == matrices.size(),
               "one projection matrix per projection is required");
  const std::size_t expected_nz =
      config_.slab_mode() ? 2 * config_.k_half : geometry_.nz;
  IFDK_REQUIRE(volume.nx() == geometry_.nx && volume.ny() == geometry_.ny &&
                   volume.nz() == expected_nz,
               "volume dimensions do not match the geometry (slab-pair mode "
               "expects local depth 2*k_half)");
  IFDK_REQUIRE(volume.layout() == config_.layout,
               "volume layout does not match the kernel configuration");
  for (const auto& p : projections) {
    IFDK_REQUIRE(p.width() == geometry_.nu && p.height() == geometry_.nv,
                 "projection size does not match the geometry");
  }
  if (config_.layout == VolumeLayout::kXMajor) {
    run_standard(volume, projections, matrices);
  } else {
    run_proposed(volume, projections, matrices);
  }
}

void Backprojector::run_standard(Volume& volume,
                                 std::span<const Image2D> projections,
                                 std::span<const geo::Mat34> matrices) const {
  const std::size_t nx = geometry_.nx;
  const std::size_t ny = geometry_.ny;
  const std::size_t nz = geometry_.nz;
  const std::size_t nu = geometry_.nu;
  const std::size_t nv = geometry_.nv;

  for (std::size_t first = 0; first < projections.size();
       first += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, projections.size() - first);

    // Flatten the batch's matrices once (the CUDA kernel keeps them in
    // constant memory, Listing 1 line 1).
    std::vector<std::array<float, 12>> pmat(count);
    std::vector<const float*> img(count);
    for (std::size_t s = 0; s < count; ++s) {
      pmat[s] = matrices[first + s].to_float();
      img[s] = projections[first + s].data();
    }

    auto slice_task = [&](std::size_t k) {
      const float fk = static_cast<float>(k);
      float* out = volume.slice(k);
      for (std::size_t j = 0; j < ny; ++j) {
        const float fj = static_cast<float>(j);
        float* out_row = out + j * nx;
        for (std::size_t i = 0; i < nx; ++i) {
          const float fi = static_cast<float>(i);
          float acc = 0.0f;
          for (std::size_t s = 0; s < count; ++s) {
            const float* m = pmat[s].data();
            // Algorithm 2 line 6: three inner products per voxel.
            const float x = dot_row(m + 0, fi, fj, fk);
            const float y = dot_row(m + 4, fi, fj, fk);
            const float z = dot_row(m + 8, fi, fj, fk);
            const float f = 1.0f / z;
            const float wdis = f * f;
            acc += wdis * interp2(img[s], nu, nv, x * f, y * f);
          }
          out_row[i] += acc;
        }
      }
    };

    if (config_.pool != nullptr) {
      config_.pool->parallel_for(0, nz, slice_task);
    } else {
      for (std::size_t k = 0; k < nz; ++k) slice_task(k);
    }
  }
}

void Backprojector::run_proposed(Volume& volume,
                                 std::span<const Image2D> projections,
                                 std::span<const geo::Mat34> matrices) const {
  const std::size_t nx = geometry_.nx;
  const std::size_t ny = geometry_.ny;
  const std::size_t nz = geometry_.nz;
  const std::size_t nu = geometry_.nu;
  const std::size_t nv = geometry_.nv;
  // Slab-pair bookkeeping: k runs over [k0, k0 + half) in *global* indices;
  // writes land at local depth nzl with the mirror at nzl - 1 - local.
  const bool slab = config_.slab_mode();
  const std::size_t k0 = slab ? config_.k_begin : 0;
  const std::size_t half = slab ? config_.k_half : nz / 2;
  const std::size_t nzl = slab ? 2 * config_.k_half : nz;
  const bool odd = !slab && (nz % 2) != 0;
  const float v_mirror = static_cast<float>(nv) - 1.0f;
  // Pair iterations per column: the symmetric kernel walks half the depth
  // (each step also updates the mirror voxel), the ablated one all of it.
  const std::size_t t_count = config_.symmetry ? half : nz;

  // Schedule: serial runs the whole space as one block; with a pool the
  // space is tiled into cache-blocked (i-block × k-slab) tasks. Tasks with
  // identical shapes produce bitwise-identical volumes because the hoisted
  // Theorem-2/3 terms are k-independent and per-voxel accumulation order
  // over the batch never changes.
  std::vector<SlabTask> tasks;
  if (config_.pool != nullptr) {
    SlabPlanParams plan;
    plan.nx = nx;
    plan.t_count = t_count;
    plan.batch = std::min(config_.batch, projections.size());
    plan.num_threads = config_.pool->size();
    tasks = plan_slab_tasks(plan);
  } else {
    tasks.push_back(SlabTask{0, nx, 0, t_count});
  }

  for (std::size_t first = 0; first < projections.size();
       first += config_.batch) {
    const std::size_t count =
        std::min(config_.batch, projections.size() - first);

    std::vector<std::array<float, 12>> pmat(count);
    for (std::size_t s = 0; s < count; ++s) {
      pmat[s] = matrices[first + s].to_float();
    }

    // Algorithm 4 line 3: transpose the batch once; its cost is a small
    // fraction of the stage (paper §3.2.3) and is included in the timing.
    // The transposes are independent, so the pool does them batch-wide.
    std::vector<Image2D> transposed;
    std::vector<const float*> img(count);
    if (config_.transpose_projections) {
      transposed.resize(count);
      auto transpose_one = [&](std::size_t s) {
        transposed[s] = projections[first + s].transposed();
      };
      if (config_.pool != nullptr) {
        config_.pool->parallel_for(0, count, transpose_one);
      } else {
        serial_for(0, count, transpose_one);
      }
      for (std::size_t s = 0; s < count; ++s) img[s] = transposed[s].data();
    } else {
      for (std::size_t s = 0; s < count; ++s) {
        img[s] = projections[first + s].data();
      }
    }

    // Per-batch constants for the SIMD column backends; the per-column loop
    // below hands one (i, j) column at a time to the resolved backend.
    simd::BatchArgs batch;
    batch.images = img.data();
    batch.pmat = pmat.data();
    batch.count = count;
    batch.nu = nu;
    batch.nv = nv;
    batch.transposed = config_.transpose_projections;
    batch.symmetry = config_.symmetry;
    batch.reuse_uw = config_.reuse_uw;
    batch.v_mirror = v_mirror;
    batch.k0 = k0;
    batch.nzl = nzl;
    batch.center = half;

    auto block_task = [&](const SlabTask& task) {
      std::vector<float> u_s(count), f_s(count), w_s(count);
      simd::ColumnArgs column;
      column.t_begin = task.t_begin;
      column.t_end = task.t_end;
      // Exactly one slab per column ends at t_count; it owns the odd
      // center plane whose mirror is itself.
      column.do_center = config_.symmetry && odd && task.t_end == t_count;
      for (std::size_t i = task.i_begin; i < task.i_end; ++i) {
        const float fi = static_cast<float>(i);
        column.fi = fi;
        for (std::size_t j = 0; j < ny; ++j) {
          const float fj = static_cast<float>(j);
          column.fj = fj;
          column.col = volume.data() + (i * ny + j) * nzl;

          if (config_.reuse_uw) {
            // Algorithm 4 lines 6-10: two inner products per (i, j), reused
            // across the slab's whole k range (Theorems 2 and 3; they are
            // k-independent, so a per-slab rehoist reproduces the exact
            // serial values).
            for (std::size_t s = 0; s < count; ++s) {
              const float* m = pmat[s].data();
              const float x = dot_row(m + 0, fi, fj, 0.0f);
              const float z = dot_row(m + 8, fi, fj, 0.0f);
              const float f = 1.0f / z;
              u_s[s] = x * f;
              f_s[s] = f;
              w_s[s] = f * f;
            }
            column.u_s = u_s.data();
            column.f_s = f_s.data();
            column.w_s = w_s.data();
          }

          column_kernel_->run(batch, column);
        }
      }
    };

    if (config_.pool != nullptr) {
      config_.pool->parallel_for(
          0, tasks.size(), [&](std::size_t n) { block_task(tasks[n]); });
    } else {
      block_task(tasks.front());
    }
  }
}

OpCounts Backprojector::count_ops(std::size_t num_projections) const {
  const std::uint64_t nx = geometry_.nx;
  const std::uint64_t ny = geometry_.ny;
  const std::uint64_t nz = geometry_.nz;
  const std::uint64_t np = num_projections;
  const std::uint64_t columns = nx * ny * np;
  OpCounts ops;

  if (config_.layout == VolumeLayout::kXMajor) {
    // Algorithm 2: 3 inner products, 1 fetch, 1 update per (voxel, proj).
    ops.inner_products = 3 * columns * nz;
    ops.interp_calls = columns * nz;
    ops.voxel_updates = columns * nz;
    return ops;
  }

  if (config_.slab_mode()) {
    const std::uint64_t h = config_.k_half;
    ops.interp_calls = columns * 2 * h;
    ops.voxel_updates = ops.interp_calls;
    ops.inner_products =
        config_.reuse_uw ? columns * (2 + h) : columns * 3 * h;
    return ops;
  }

  const std::uint64_t half = nz / 2;
  const std::uint64_t odd = nz % 2;
  if (config_.symmetry) {
    ops.interp_calls = columns * (2 * half + odd);
    ops.voxel_updates = ops.interp_calls;
    if (config_.reuse_uw) {
      // 2 hoisted products per column + 1 per k iteration (pairs + middle).
      ops.inner_products = columns * (2 + half + odd);
    } else {
      ops.inner_products = columns * 3 * (half + odd);
    }
  } else {
    ops.interp_calls = columns * nz;
    ops.voxel_updates = columns * nz;
    ops.inner_products =
        config_.reuse_uw ? columns * (2 + nz) : columns * 3 * nz;
  }
  return ops;
}

Volume backproject_all(const geo::CbctGeometry& geometry,
                       std::span<const Image2D> projections, BpConfig config) {
  Volume volume(geometry.nx, geometry.ny, geometry.nz, config.layout,
                /*zero_fill=*/true);
  Backprojector bp(geometry, config);
  const auto matrices = geo::make_all_projection_matrices(geometry);
  IFDK_REQUIRE(projections.size() == matrices.size(),
               "backproject_all expects one projection per gantry angle");
  bp.accumulate(volume, projections, matrices);
  return volume;
}

}  // namespace ifdk::bp
