// Ramp filter construction (the Framp of paper Table 1 / Algorithm 1).
//
// The spatial-domain Ram-Lak impulse response is the classical Kak & Slaney
// band-limited ramp sampled at the (isocenter-rescaled) detector pitch tau:
//
//   h[0]      = 1 / (4 tau^2)
//   h[n even] = 0
//   h[n odd]  = -1 / (n^2 pi^2 tau^2)
//
// Window variants (Shepp-Logan, cosine, Hamming, Hann) multiply the ramp's
// frequency response by an apodization window; as the paper notes (§2.2.2)
// the window changes image quality but not the compute cost of the stage.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ifdk::filter {

enum class RampWindow {
  kRamLak,      ///< pure band-limited ramp (sharpest, noisiest)
  kSheppLogan,  ///< ramp * sinc
  kCosine,      ///< ramp * cos
  kHamming,     ///< ramp * (0.54 + 0.46 cos)
  kHann,        ///< ramp * (0.5 + 0.5 cos)
};

/// Canonical lower-case name of a window ("ram-lak", "shepp-logan", ...).
const char* to_string(RampWindow w);

/// Parses a window name, case-insensitively, accepting exactly the
/// to_string() spellings. Throws ConfigError naming the valid options for
/// anything else.
RampWindow ramp_window_from_string(const std::string& name);

/// Builds the spatial-domain filter kernel of length 2*half_width+1 centered
/// at index half_width. `tau` is the sample pitch the ramp is defined on and
/// `scale` is an overall multiplier (the FDK normalization the caller bakes
/// in: delta_beta * d^2 * tau / 2; see FilterEngine). Throws ConfigError for
/// half_width == 0 (a one-tap "ramp" cannot represent the filter).
std::vector<double> make_ramp_kernel(std::size_t half_width, double tau,
                                     RampWindow window, double scale);

}  // namespace ifdk::filter
