#include "filter/ramp.h"

#include <cctype>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "fft/fft.h"

namespace ifdk::filter {

namespace {

// Lower-cases ASCII so window names parse case-insensitively ("Hann",
// "HANN" and "hann" all select kHann).
std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const char* to_string(RampWindow w) {
  switch (w) {
    case RampWindow::kRamLak:     return "ram-lak";
    case RampWindow::kSheppLogan: return "shepp-logan";
    case RampWindow::kCosine:     return "cosine";
    case RampWindow::kHamming:    return "hamming";
    case RampWindow::kHann:       return "hann";
  }
  return "?";
}

RampWindow ramp_window_from_string(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "ram-lak") return RampWindow::kRamLak;
  if (lower == "shepp-logan") return RampWindow::kSheppLogan;
  if (lower == "cosine") return RampWindow::kCosine;
  if (lower == "hamming") return RampWindow::kHamming;
  if (lower == "hann") return RampWindow::kHann;
  throw ConfigError("unknown ramp window \"" + name +
                    "\"; valid windows are ram-lak, shepp-logan, cosine, "
                    "hamming, hann (case-insensitive)");
}

namespace {

/// Apodization gain at normalized frequency w in [0, pi] (pi = Nyquist).
double window_gain(RampWindow window, double w) {
  switch (window) {
    case RampWindow::kRamLak:
      return 1.0;
    case RampWindow::kSheppLogan:
      return w == 0.0 ? 1.0 : std::sin(w / 2.0) / (w / 2.0);
    case RampWindow::kCosine:
      return std::cos(w / 2.0);
    case RampWindow::kHamming:
      return 0.54 + 0.46 * std::cos(w);
    case RampWindow::kHann:
      return 0.5 + 0.5 * std::cos(w);
  }
  return 1.0;
}

}  // namespace

std::vector<double> make_ramp_kernel(std::size_t half_width, double tau,
                                     RampWindow window, double scale) {
  // A configuration error, not a programming error: half_width reaches here
  // straight from FilterOptions, so reject it with a ConfigError the caller
  // can catch rather than aborting.
  IFDK_REQUIRE(half_width > 0,
               "ramp kernel half_width must be >= 1 (a one-tap kernel cannot "
               "represent the band-limited ramp)");
  IFDK_ASSERT(tau > 0);
  const std::size_t len = 2 * half_width + 1;

  // Band-limited ramp sampled in the spatial domain (Kak & Slaney eq. 61):
  // constructing it here rather than as |w| in the frequency domain avoids
  // the classic DC-offset (cupping) artifact of naive frequency sampling.
  std::vector<double> kernel(len, 0.0);
  const double inv_tau2 = 1.0 / (tau * tau);
  kernel[half_width] = 0.25 * inv_tau2;
  for (std::size_t n = 1; n <= half_width; n += 2) {
    const double value =
        -inv_tau2 / (kPi * kPi * static_cast<double>(n) * static_cast<double>(n));
    kernel[half_width - n] = value;
    kernel[half_width + n] = value;
  }

  if (window != RampWindow::kRamLak) {
    // Apodize in the frequency domain, then return to the spatial domain.
    const std::size_t padded = next_pow2(4 * len);
    std::vector<fft::Complex> spec(padded, fft::Complex(0, 0));
    for (std::size_t i = 0; i < len; ++i) {
      spec[i] = fft::Complex(kernel[i], 0.0);
    }
    fft::forward(spec);
    for (std::size_t b = 0; b < padded; ++b) {
      // Map FFT bin to |normalized frequency| in [0, pi].
      const std::size_t folded = b <= padded / 2 ? b : padded - b;
      const double w =
          kPi * static_cast<double>(folded) / (static_cast<double>(padded) / 2.0);
      spec[b] *= window_gain(window, w);
    }
    fft::inverse(spec);
    for (std::size_t i = 0; i < len; ++i) kernel[i] = spec[i].real();
  }

  for (auto& v : kernel) v *= scale;
  return kernel;
}

}  // namespace ifdk::filter
