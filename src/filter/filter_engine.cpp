#include "filter/filter_engine.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::filter {

FilterEngine::FilterEngine(const geo::CbctGeometry& geometry,
                           FilterOptions options)
    : geometry_(geometry), options_(options) {
  geometry_.validate();

  // Cosine weighting table: Fcos(u, v) = D / sqrt(D^2 + u~^2 + v~^2) with
  // (u~, v~) the physical offset of pixel (u, v) from the detector center.
  cosine_ = Image2D(geometry_.nu, geometry_.nv, /*zero_fill=*/false);
  const double cu = (static_cast<double>(geometry_.nu) - 1.0) / 2.0;
  const double cv = (static_cast<double>(geometry_.nv) - 1.0) / 2.0;
  for (std::size_t v = 0; v < geometry_.nv; ++v) {
    const double vv = (static_cast<double>(v) - cv) * geometry_.dv;
    for (std::size_t u = 0; u < geometry_.nu; ++u) {
      const double uu = (static_cast<double>(u) - cu) * geometry_.du;
      cosine_.at(u, v) = static_cast<float>(
          geometry_.D /
          std::sqrt(geometry_.D * geometry_.D + uu * uu + vv * vv));
    }
  }

  // Ramp kernel on the isocenter-plane pitch, with the FDK normalization
  // documented in the header: tau/2 (discrete convolution quadrature and
  // full-scan double coverage) * delta_beta * d^2.
  const double tau = geometry_.du * geometry_.d / geometry_.D;
  const double delta_beta = geometry_.theta();
  const double scale = 0.5 * tau * delta_beta * geometry_.d * geometry_.d;
  const std::size_t half_width = options_.kernel_half_width > 0
                                     ? options_.kernel_half_width
                                     : geometry_.nu - 1;
  kernel_ = make_ramp_kernel(half_width, tau, options_.window, scale);
  convolver_ = std::make_unique<fft::RowConvolver>(geometry_.nu, kernel_);
}

void FilterEngine::apply(Image2D& projection) const {
  IFDK_REQUIRE(projection.width() == geometry_.nu &&
                   projection.height() == geometry_.nv,
               "projection size does not match the geometry");
  auto filter_row = [this, &projection](std::size_t v) {
    float* row = projection.row(v);
    const float* weight = cosine_.row(v);
    for (std::size_t u = 0; u < geometry_.nu; ++u) row[u] *= weight[u];
    convolver_->convolve_row(row);
  };
  if (options_.pool != nullptr) {
    options_.pool->parallel_for(0, geometry_.nv, filter_row);
  } else {
    for (std::size_t v = 0; v < geometry_.nv; ++v) filter_row(v);
  }
}

void FilterEngine::apply_batch(std::vector<Image2D>& projections) const {
  // Parallelism across whole projections (one OpenMP-style task per image,
  // matching the paper's "load and filter within the same thread" policy).
  if (options_.pool != nullptr) {
    // Rows of a single image are filtered serially inside each task; tasks
    // run concurrently across images.
    options_.pool->parallel_for(0, projections.size(), [&](std::size_t i) {
      IFDK_REQUIRE(projections[i].width() == geometry_.nu &&
                       projections[i].height() == geometry_.nv,
                   "projection size does not match the geometry");
      for (std::size_t v = 0; v < geometry_.nv; ++v) {
        float* row = projections[i].row(v);
        const float* weight = cosine_.row(v);
        for (std::size_t u = 0; u < geometry_.nu; ++u) row[u] *= weight[u];
        convolver_->convolve_row(row);
      }
    });
    return;
  }
  for (auto& p : projections) apply(p);
}

}  // namespace ifdk::filter
