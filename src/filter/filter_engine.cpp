#include "filter/filter_engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::filter {

FilterEngine::FilterEngine(const geo::CbctGeometry& geometry,
                           FilterOptions options)
    : geometry_(geometry), options_(options) {
  geometry_.validate();
  // An oversized half-width would silently inflate padded_size() (and with
  // it every transform) past the exact-convolution default; reject it here,
  // where both numbers are known, instead of deep in the FFT plan.
  IFDK_REQUIRE(options_.kernel_half_width < geometry_.nu,
               "FilterOptions::kernel_half_width (" +
                   std::to_string(options_.kernel_half_width) +
                   ") must be < Nu (" + std::to_string(geometry_.nu) +
                   "); 0 selects the exact full-row default Nu - 1");

  // Cosine weighting table: Fcos(u, v) = D / sqrt(D^2 + u~^2 + v~^2) with
  // (u~, v~) the physical offset of pixel (u, v) from the detector center.
  cosine_ = Image2D(geometry_.nu, geometry_.nv, /*zero_fill=*/false);
  const double cu = (static_cast<double>(geometry_.nu) - 1.0) / 2.0;
  const double cv = (static_cast<double>(geometry_.nv) - 1.0) / 2.0;
  for (std::size_t v = 0; v < geometry_.nv; ++v) {
    const double vv = (static_cast<double>(v) - cv) * geometry_.dv;
    for (std::size_t u = 0; u < geometry_.nu; ++u) {
      const double uu = (static_cast<double>(u) - cu) * geometry_.du;
      cosine_.at(u, v) = static_cast<float>(
          geometry_.D /
          std::sqrt(geometry_.D * geometry_.D + uu * uu + vv * vv));
    }
  }

  // Ramp kernel on the isocenter-plane pitch, with the FDK normalization
  // documented in the header: tau/2 (discrete convolution quadrature and
  // full-scan double coverage) * delta_beta * d^2.
  const double tau = geometry_.du * geometry_.d / geometry_.D;
  const double delta_beta = geometry_.theta();
  const double scale = 0.5 * tau * delta_beta * geometry_.d * geometry_.d;
  const std::size_t half_width = options_.kernel_half_width > 0
                                     ? options_.kernel_half_width
                                     : geometry_.nu - 1;
  kernel_ = make_ramp_kernel(half_width, tau, options_.window, scale);
  convolver_ = std::make_unique<fft::RowConvolver>(geometry_.nu, kernel_,
                                                   options_.fft_backend);
}

void FilterEngine::filter_group(Image2D& projection, std::size_t group,
                                fft::Workspace& ws) const {
  const std::size_t lanes = convolver_->batch_lanes();
  const std::size_t v0 = group * lanes;
  const std::size_t rows = std::min(lanes, geometry_.nv - v0);
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = projection.row(v0 + r);
    const float* weight = cosine_.row(v0 + r);
    for (std::size_t u = 0; u < geometry_.nu; ++u) row[u] *= weight[u];
  }
  // Image2D rows are contiguous, so the group is one batch entry point call.
  convolver_->convolve_rows(projection.row(v0), rows, ws);
}

void FilterEngine::apply(Image2D& projection, fft::Workspace& ws) const {
  IFDK_REQUIRE(projection.width() == geometry_.nu &&
                   projection.height() == geometry_.nv,
               "projection size does not match the geometry");
  const std::size_t groups = div_ceil(geometry_.nv, convolver_->batch_lanes());
  if (options_.pool != nullptr) {
    // Pool workers can't share one workspace; each grabs its thread's own.
    options_.pool->parallel_for(0, groups, [&](std::size_t g) {
      filter_group(projection, g, fft::thread_workspace());
    });
    return;
  }
  for (std::size_t g = 0; g < groups; ++g) filter_group(projection, g, ws);
}

void FilterEngine::apply(Image2D& projection) const {
  apply(projection, fft::thread_workspace());
}

void FilterEngine::apply_batch(std::vector<Image2D>& projections) const {
  // Parallelism across whole projections (one OpenMP-style task per image,
  // matching the paper's "load and filter within the same thread" policy).
  if (options_.pool != nullptr) {
    // Row groups of a single image are filtered serially inside each task
    // (on the task thread's workspace); tasks run concurrently across
    // images.
    options_.pool->parallel_for(0, projections.size(), [&](std::size_t i) {
      IFDK_REQUIRE(projections[i].width() == geometry_.nu &&
                       projections[i].height() == geometry_.nv,
                   "projection size does not match the geometry");
      fft::Workspace& ws = fft::thread_workspace();
      const std::size_t groups =
          div_ceil(geometry_.nv, convolver_->batch_lanes());
      for (std::size_t g = 0; g < groups; ++g) {
        filter_group(projections[i], g, ws);
      }
    });
    return;
  }
  fft::Workspace ws;
  for (auto& p : projections) apply(p, ws);
}

}  // namespace ifdk::filter
