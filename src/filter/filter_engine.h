// The CPU filtering stage of Algorithm 1 (paper Section 3.1).
//
// For each projection E_i:
//   1. point-wise multiply by the 2-D cosine table Fcos (cone-beam weight),
//   2. convolve every row with the 1-D ramp filter Framp via FFT.
//
// FDK normalization: the back-projection kernels compute Wdis = 1/z^2 with z
// in millimetres (Algorithm 2/4), so the full Feldkamp weight
// (2*pi/Np) * d^2 / z^2 is completed by baking (2*pi/Np) * d^2 into the ramp
// kernel here, together with the isocenter-plane sample pitch
// tau = Du * d / D and the half-scan-double-coverage factor 1/2. After this
// stage a back-projection pass reconstructs density in the phantom's units.
//
// The engine is what the paper runs on the CPUs: rows are independent, so a
// ThreadPool parallelizes across them (the paper uses OpenMP + Intel IPP).
// Rows feed the fft/simd batch backends batch_lanes() at a time (SoA, one
// row per vector lane; 8 rows per group on avx512, 4 elsewhere);
// FilterOptions::fft_backend picks the kernel the same way
// BpConfig::simd_backend does for back-projection, and every backend —
// batched or row-at-a-time — produces bitwise-identical projections.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/image.h"
#include "common/thread_pool.h"
#include "fft/fft.h"
#include "filter/ramp.h"
#include "geometry/cbct.h"

namespace ifdk::filter {

struct FilterOptions {
  RampWindow window = RampWindow::kRamLak;
  /// Ramp kernel half-width in samples; 0 means "cover the row" (Nu - 1),
  /// which makes the FFT convolution exact for the full row support. Any
  /// other value must stay below Nu — FilterEngine rejects oversized widths
  /// that would silently inflate the padded FFT size.
  std::size_t kernel_half_width = 0;
  /// Optional pool; filtering runs serially when null.
  ThreadPool* pool = nullptr;
  /// Which FFT batch backend convolves the rows (kAuto = widest supported
  /// at runtime; kScalar / kAvx2 / kAvx512 / kNeon force one, mirroring
  /// BpConfig::simd_backend).
  fft::Backend fft_backend = fft::Backend::kAuto;
};

class FilterEngine {
 public:
  /// Validates the options against the geometry (throws ConfigError when
  /// kernel_half_width >= Nu), builds the cosine table, the normalized ramp
  /// kernel and the backend-dispatched row convolver.
  FilterEngine(const geo::CbctGeometry& geometry, FilterOptions options = {});

  /// Filters one projection in place (cosine weighting + batched row
  /// convolution) using the calling thread's workspace; pooled row batches
  /// use their own per-thread workspaces.
  void apply(Image2D& projection) const;

  /// Same, with caller-owned scratch: long-lived filtering threads own one
  /// Workspace across projections so steady-state filtering never touches
  /// the heap. `ws` serves the serial path; pool workers (when
  /// FilterOptions::pool is set) use their per-thread workspaces instead.
  void apply(Image2D& projection, fft::Workspace& ws) const;

  /// Filters a batch in place, parallelizing across projections and rows.
  void apply_batch(std::vector<Image2D>& projections) const;

  /// The cosine table Fcos of Table 1 (size Nv x Nu), exposed for tests.
  const Image2D& cosine_table() const { return cosine_; }

  /// The spatial ramp kernel after all normalization, exposed for tests.
  const std::vector<double>& kernel() const { return kernel_; }

  /// Name of the FFT batch backend the convolver selected ("scalar",
  /// "avx2", "avx512" or "neon"), after kAuto resolution.
  const char* fft_backend_name() const { return convolver_->backend_name(); }

 private:
  /// Weights and convolves one batch_lanes()-row group (group g covers rows
  /// [g * batch_lanes(), ...)); the unit of work both apply paths schedule.
  void filter_group(Image2D& projection, std::size_t group,
                    fft::Workspace& ws) const;

  geo::CbctGeometry geometry_;
  FilterOptions options_;
  Image2D cosine_;
  std::vector<double> kernel_;
  std::unique_ptr<fft::RowConvolver> convolver_;
};

}  // namespace ifdk::filter
