// The CPU filtering stage of Algorithm 1 (paper Section 3.1).
//
// For each projection E_i:
//   1. point-wise multiply by the 2-D cosine table Fcos (cone-beam weight),
//   2. convolve every row with the 1-D ramp filter Framp via FFT.
//
// FDK normalization: the back-projection kernels compute Wdis = 1/z^2 with z
// in millimetres (Algorithm 2/4), so the full Feldkamp weight
// (2*pi/Np) * d^2 / z^2 is completed by baking (2*pi/Np) * d^2 into the ramp
// kernel here, together with the isocenter-plane sample pitch
// tau = Du * d / D and the half-scan-double-coverage factor 1/2. After this
// stage a back-projection pass reconstructs density in the phantom's units.
//
// The engine is what the paper runs on the CPUs: rows are independent, so a
// ThreadPool parallelizes across them (the paper uses OpenMP + Intel IPP).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/image.h"
#include "common/thread_pool.h"
#include "fft/fft.h"
#include "filter/ramp.h"
#include "geometry/cbct.h"

namespace ifdk::filter {

struct FilterOptions {
  RampWindow window = RampWindow::kRamLak;
  /// Ramp kernel half-width in samples; 0 means "cover the row" (Nu - 1),
  /// which makes the FFT convolution exact for the full row support.
  std::size_t kernel_half_width = 0;
  /// Optional pool; filtering runs serially when null.
  ThreadPool* pool = nullptr;
};

class FilterEngine {
 public:
  FilterEngine(const geo::CbctGeometry& geometry, FilterOptions options = {});

  /// Filters one projection in place (cosine weighting + row convolution).
  void apply(Image2D& projection) const;

  /// Filters a batch in place, parallelizing across projections and rows.
  void apply_batch(std::vector<Image2D>& projections) const;

  /// The cosine table Fcos of Table 1 (size Nv x Nu), exposed for tests.
  const Image2D& cosine_table() const { return cosine_; }

  /// The spatial ramp kernel after all normalization, exposed for tests.
  const std::vector<double>& kernel() const { return kernel_; }

 private:
  geo::CbctGeometry geometry_;
  FilterOptions options_;
  Image2D cosine_;
  std::vector<double> kernel_;
  std::unique_ptr<fft::RowConvolver> convolver_;
};

}  // namespace ifdk::filter
