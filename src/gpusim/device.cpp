#include "gpusim/device.h"

#include <cstring>

#include "common/math_util.h"

namespace ifdk::gpusim {

void DeviceBuffer::release() {
  if (device_ != nullptr) {
    device_->free_buffer(id_);
    delete[] data_;
  }
  device_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  id_ = 0;
}

Device::Device(DeviceSpec spec) : spec_(std::move(spec)) {
  IFDK_REQUIRE(spec_.memory_bytes > 0, "device memory must be positive");
  IFDK_REQUIRE(spec_.pcie_bandwidth_bytes_per_s > 0,
               "PCIe bandwidth must be positive");
}

Device::~Device() {
  IFDK_ASSERT_MSG(live_.empty(),
                  "device destroyed while buffers are still allocated");
}

DeviceBuffer Device::allocate(std::uint64_t bytes) {
  const std::uint64_t rounded = round_up(bytes, sizeof(float));
  if (rounded > free_bytes()) {
    throw DeviceOutOfMemory(
        "device allocation of " + human_bytes(rounded) + " exceeds free " +
        human_bytes(free_bytes()) + " of " + human_bytes(spec_.memory_bytes));
  }
  DeviceBuffer buf;
  buf.device_ = this;
  buf.id_ = next_id_++;
  buf.size_ = rounded;
  buf.data_ = new float[rounded / sizeof(float)];
  used_ += rounded;
  live_[buf.id_] = rounded;
  return buf;
}

void Device::free_buffer(std::uint64_t id) {
  auto it = live_.find(id);
  IFDK_ASSERT_MSG(it != live_.end(), "double free of a device buffer");
  used_ -= it->second;
  live_.erase(it);
}

double Device::h2d(DeviceBuffer& dst, const float* src, std::uint64_t bytes,
                   std::uint64_t dst_offset_bytes) {
  IFDK_ASSERT(dst.valid() && dst.device_ == this);
  IFDK_ASSERT(dst_offset_bytes + bytes <= dst.size());
  if (bytes > 0) {
    std::memcpy(reinterpret_cast<char*>(dst.data()) + dst_offset_bytes, src,
                bytes);
  }
  const double cost = spec_.pcie_latency_s +
                      static_cast<double>(bytes) /
                          spec_.pcie_bandwidth_bytes_per_s;
  t_h2d_ += cost;
  return cost;
}

double Device::d2h(float* dst, const DeviceBuffer& src, std::uint64_t bytes,
                   std::uint64_t src_offset_bytes) {
  IFDK_ASSERT(src.valid() && src.device_ == this);
  IFDK_ASSERT(src_offset_bytes + bytes <= src.size());
  if (bytes > 0) {
    std::memcpy(dst,
                reinterpret_cast<const char*>(src.data()) + src_offset_bytes,
                bytes);
  }
  const double cost = spec_.pcie_latency_s +
                      static_cast<double>(bytes) /
                          spec_.pcie_bandwidth_bytes_per_s;
  t_d2h_ += cost;
  return cost;
}

double Device::charge_h2d(std::uint64_t bytes) {
  const double cost = spec_.pcie_latency_s +
                      static_cast<double>(bytes) /
                          spec_.pcie_bandwidth_bytes_per_s;
  t_h2d_ += cost;
  return cost;
}

double Device::charge_d2h(std::uint64_t bytes) {
  const double cost = spec_.pcie_latency_s +
                      static_cast<double>(bytes) /
                          spec_.pcie_bandwidth_bytes_per_s;
  t_d2h_ += cost;
  return cost;
}

void Device::charge_kernel(double seconds) {
  IFDK_ASSERT(seconds >= 0);
  t_kernel_ += spec_.launch_latency_s + seconds;
}

}  // namespace ifdk::gpusim
