// Simulated GPU device (the V100 of the paper's testbed).
//
// There is no CUDA here; what this module preserves from the paper are the
// *constraints and costs* the framework is designed around:
//   * finite device memory (16 GB on the paper's V100s) — allocation beyond
//     capacity throws DeviceOutOfMemory, which is what forces the R-selection
//     rule of Section 4.1.5;
//   * explicit host<->device transfers priced by a PCIe bandwidth/latency
//     model (BW_PCIe = 11.9 GB/s measured by bandwidthTest, Section 5.3.3);
//   * kernel execution priced by the Table-4-calibrated KernelModel.
//
// Transfers and kernel launches actually execute on the CPU (memcpy / the
// real back-projection kernels); the Device additionally keeps a *virtual
// clock ledger* of what the same operations would have cost on the paper's
// hardware, which the benches report alongside CPU wall time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/error.h"

namespace ifdk::gpusim {

struct DeviceSpec {
  std::string name = "Tesla V100-SXM2-16GB (simulated)";
  std::uint64_t memory_bytes = 16ull << 30;
  /// Effective host<->device bandwidth of one PCIe gen3 x16 link, as measured
  /// by Nvidia's bandwidthTest on ABCI (Section 5.3.3).
  double pcie_bandwidth_bytes_per_s = 11.9e9;
  /// Per-transfer latency (driver + DMA setup).
  double pcie_latency_s = 10e-6;
  /// Kernel launch overhead.
  double launch_latency_s = 5e-6;
};

/// RAII handle to a device allocation. Move-only; frees on destruction.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ~DeviceBuffer() { release(); }

  std::uint64_t size() const { return size_; }
  bool valid() const { return device_ != nullptr; }

  /// "Device memory" is plain host memory; kernels read/write it directly
  /// (the simulation boundary is the accounting, not the storage).
  float* data() { return data_; }
  const float* data() const { return data_; }

  void release();

 private:
  friend class Device;
  class Device* device_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t size_ = 0;
  float* data_ = nullptr;

  void swap(DeviceBuffer& other) noexcept {
    std::swap(device_, other.device_);
    std::swap(id_, other.id_);
    std::swap(size_, other.size_);
    std::swap(data_, other.data_);
  }
};

class Device {
 public:
  explicit Device(DeviceSpec spec = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceSpec& spec() const { return spec_; }

  /// Allocates `bytes` of device memory (rounded up to whole floats).
  /// Throws DeviceOutOfMemory when the remaining capacity is insufficient —
  /// the exact situation Eq. (7)'s R-selection avoids.
  DeviceBuffer allocate(std::uint64_t bytes);

  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return spec_.memory_bytes - used_; }

  /// Host -> device copy. Performs the real memcpy and charges the virtual
  /// clock with latency + bytes / BW_PCIe. Returns the charged seconds.
  double h2d(DeviceBuffer& dst, const float* src, std::uint64_t bytes,
             std::uint64_t dst_offset_bytes = 0);

  /// Device -> host copy, same accounting.
  double d2h(float* dst, const DeviceBuffer& src, std::uint64_t bytes,
             std::uint64_t src_offset_bytes = 0);

  /// Charges `seconds` of kernel time to the virtual clock (the caller ran
  /// the kernel on the CPU and computed the V100-equivalent cost from the
  /// KernelModel).
  void charge_kernel(double seconds);

  /// Accounting-only transfers: charge the PCIe cost of moving `bytes`
  /// without touching data. The iFDK pipeline uses these when the payload
  /// already lives in host memory (the kernels execute on the CPU) but the
  /// modeled V100 would have had to move it. Returns the charged seconds.
  double charge_h2d(std::uint64_t bytes);
  double charge_d2h(std::uint64_t bytes);

  // Virtual-clock ledger (seconds the modeled V100 would have spent).
  double virtual_h2d_seconds() const { return t_h2d_; }
  double virtual_d2h_seconds() const { return t_d2h_; }
  double virtual_kernel_seconds() const { return t_kernel_; }
  double virtual_total_seconds() const { return t_h2d_ + t_d2h_ + t_kernel_; }

 private:
  friend class DeviceBuffer;
  void free_buffer(std::uint64_t id);

  DeviceSpec spec_;
  std::uint64_t used_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::uint64_t> live_;  // id -> bytes
  double t_h2d_ = 0;
  double t_d2h_ = 0;
  double t_kernel_ = 0;
};

}  // namespace ifdk::gpusim
