// V100 back-projection kernel throughput model, calibrated against Table 4.
//
// The paper shows kernel GUPS to be governed primarily by the kernel variant
// and the input/output ratio alpha (small alpha = large output = better GPU
// utilization; Section 4.1.5 point II builds on exactly this relationship).
// The model therefore:
//   * returns the measured Table-4 value for exact problem matches,
//   * otherwise interpolates log(GUPS) linearly in log(alpha) between the
//     calibration points of the same variant (clamping at the ends).
//
// RTK-32 cannot run outputs above 8 GB (dual-buffer limit, Section 5.2);
// the model returns NaN there, as the paper prints N/A.
#pragma once

#include <cstddef>

#include "backproj/backprojector.h"
#include "geometry/types.h"

namespace ifdk::gpusim {

class KernelModel {
 public:
  KernelModel();

  /// Predicted single-V100 GUPS for `variant` on `problem`; NaN when the
  /// variant cannot run the problem (RTK-32 above 8 GB output).
  double predict_gups(bp::KernelVariant variant, const Problem& problem) const;

  /// Predicted kernel execution time in seconds
  /// (updates / (GUPS * 2^30)); NaN when unsupported.
  double kernel_seconds(bp::KernelVariant variant,
                        const Problem& problem) const;

 private:
  struct Point {
    double log_alpha;
    double log_gups;
  };
  /// Calibration points per variant, sorted by log_alpha; duplicate alphas
  /// are collapsed to their geometric mean.
  std::vector<std::vector<Point>> points_;
};

}  // namespace ifdk::gpusim
