#include "gpusim/kernel_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/error.h"
#include "perfmodel/paper_reference.h"

namespace ifdk::gpusim {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kNumVariants = 5;

double row_value(const paper::Table4Row& row, bp::KernelVariant variant) {
  switch (variant) {
    case bp::KernelVariant::kRtk32:   return row.rtk32;
    case bp::KernelVariant::kBpTex:   return row.bp_tex;
    case bp::KernelVariant::kTexTran: return row.tex_tran;
    case bp::KernelVariant::kBpL1:    return row.bp_l1;
    case bp::KernelVariant::kL1Tran:  return row.l1_tran;
  }
  return kNaN;
}

}  // namespace

KernelModel::KernelModel() {
  points_.resize(kNumVariants);
  for (std::size_t v = 0; v < kNumVariants; ++v) {
    const auto variant = static_cast<bp::KernelVariant>(v);
    // Collapse duplicate alphas (Table 4 measures alpha=1 three times) to
    // the geometric mean of their GUPS.
    std::map<double, std::pair<double, int>> by_alpha;  // log sum, count
    for (const auto& row : paper::table4()) {
      const double gups = row_value(row, variant);
      if (std::isnan(gups)) continue;
      auto& [log_sum, count] = by_alpha[row.alpha];
      log_sum += std::log(gups);
      count += 1;
    }
    for (const auto& [alpha, acc] : by_alpha) {
      points_[v].push_back(Point{std::log(alpha), acc.first / acc.second});
    }
    std::sort(points_[v].begin(), points_[v].end(),
              [](const Point& a, const Point& b) {
                return a.log_alpha < b.log_alpha;
              });
    IFDK_ASSERT(points_[v].size() >= 2);
  }
}

double KernelModel::predict_gups(bp::KernelVariant variant,
                                 const Problem& problem) const {
  // RTK's dual-buffer scheme caps the output at half the 16 GB device
  // memory (Section 5.2): the paper prints N/A for > 8 GB outputs.
  if (variant == bp::KernelVariant::kRtk32 &&
      problem.out.bytes() > 8ull << 30) {
    return kNaN;
  }

  // Exact Table-4 problems return the measured number untouched.
  for (const auto& row : paper::table4()) {
    if (row.problem.in == problem.in && row.problem.out == problem.out) {
      return row_value(row, variant);
    }
  }

  const auto& pts = points_[static_cast<std::size_t>(variant)];
  const double la = std::log(problem.alpha());
  if (la <= pts.front().log_alpha) return std::exp(pts.front().log_gups);
  if (la >= pts.back().log_alpha) return std::exp(pts.back().log_gups);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (la <= pts[i].log_alpha) {
      const double t = (la - pts[i - 1].log_alpha) /
                       (pts[i].log_alpha - pts[i - 1].log_alpha);
      return std::exp(pts[i - 1].log_gups +
                      t * (pts[i].log_gups - pts[i - 1].log_gups));
    }
  }
  return std::exp(pts.back().log_gups);
}

double KernelModel::kernel_seconds(bp::KernelVariant variant,
                                   const Problem& problem) const {
  const double gups = predict_gups(variant, problem);
  if (std::isnan(gups)) return kNaN;
  return problem.updates() / (gups * 1073741824.0);
}

}  // namespace ifdk::gpusim
