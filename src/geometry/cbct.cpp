#include "geometry/cbct.h"

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::geo {

double CbctGeometry::theta() const {
  IFDK_ASSERT(np > 0);
  return 2.0 * kPi / static_cast<double>(np);
}

double CbctGeometry::beta(std::size_t s) const {
  return static_cast<double>(s) * theta();
}

void CbctGeometry::validate() const {
  IFDK_REQUIRE(np > 0 && nu > 0 && nv > 0, "projection dimensions must be > 0");
  IFDK_REQUIRE(nx > 0 && ny > 0 && nz > 0, "volume dimensions must be > 0");
  IFDK_REQUIRE(du > 0 && dv > 0, "detector pitch must be > 0");
  IFDK_REQUIRE(dx > 0 && dy > 0 && dz > 0, "voxel pitch must be > 0");
  IFDK_REQUIRE(d > 0, "source-to-axis distance d must be > 0");
  IFDK_REQUIRE(D > d, "source-to-detector distance D must exceed d");

  // The in-plane footprint of the volume, magnified onto the detector, must
  // fit inside the panel; otherwise projections truncate and FDK produces
  // bright rim artifacts.
  const double rx = 0.5 * static_cast<double>(nx) * dx;
  const double ry = 0.5 * static_cast<double>(ny) * dy;
  const double r_xy = std::sqrt(rx * rx + ry * ry);
  IFDK_REQUIRE(r_xy < d, "volume intersects the source orbit (d too small)");
  const double mag_max = D / (d - r_xy);
  IFDK_REQUIRE(r_xy * mag_max <= 0.5 * static_cast<double>(nu) * du * 1.0001,
               "detector too narrow for the magnified volume footprint");
  const double rz = 0.5 * static_cast<double>(nz) * dz;
  IFDK_REQUIRE(rz * mag_max <= 0.5 * static_cast<double>(nv) * dv * 1.0001,
               "detector too short for the magnified volume height");
}

CbctGeometry make_standard_geometry(const Problem& problem) {
  CbctGeometry g;
  g.np = problem.in.np;
  g.nu = problem.in.nu;
  g.nv = problem.in.nv;
  g.du = 1.0;
  g.dv = 1.0;
  g.nx = problem.out.nx;
  g.ny = problem.out.ny;
  g.nz = problem.out.nz;

  // RabbitCT-like proportions: source orbit at twice the panel half-width,
  // detector at 1.5x the orbit radius (magnification 1.5 at the isocenter).
  const double half_panel_u = 0.5 * static_cast<double>(g.nu) * g.du;
  const double half_panel_v = 0.5 * static_cast<double>(g.nv) * g.dv;
  g.d = 2.0 * half_panel_u;
  g.D = 1.5 * g.d;

  // Size the voxels so the whole volume provably passes validate(): solve
  // r_xy * D / (d - r_xy) = safety * half_panel_u for the in-plane radius.
  const double safety = 0.95;
  const double target_u = safety * half_panel_u;
  const double r_xy = target_u * g.d / (g.D + target_u);
  const double diag =
      std::sqrt(static_cast<double>(g.nx) * static_cast<double>(g.nx) +
                static_cast<double>(g.ny) * static_cast<double>(g.ny)) / 2.0;
  g.dx = g.dy = r_xy / diag;

  const double mag_max = g.D / (g.d - r_xy);
  const double rz = safety * half_panel_v / mag_max;
  g.dz = 2.0 * rz / static_cast<double>(g.nz);

  g.validate();
  return g;
}

Mat4 make_m0(const CbctGeometry& g) {
  Mat4 shift = Mat4::identity();
  shift.at(0, 3) = -(static_cast<double>(g.nx) - 1.0) / 2.0;
  shift.at(1, 1) = -1.0;
  shift.at(1, 3) = (static_cast<double>(g.ny) - 1.0) / 2.0;
  shift.at(2, 2) = -1.0;
  shift.at(2, 3) = (static_cast<double>(g.nz) - 1.0) / 2.0;
  return Mat4::diagonal(g.dx, g.dy, g.dz, 1.0) * shift;
}

Mat4 make_mrot(const CbctGeometry& g, double beta) {
  Mat4 axis_swap;  // maps (x, y, z) -> (x, -z, y + d): optical axis becomes +Z
  axis_swap.at(0, 0) = 1.0;
  axis_swap.at(1, 2) = -1.0;
  axis_swap.at(2, 1) = 1.0;
  axis_swap.at(2, 3) = g.d;
  axis_swap.at(3, 3) = 1.0;
  return axis_swap * Mat4::rotation_z(beta);
}

Mat4 make_m1(const CbctGeometry& g) {
  Mat4 proj;
  proj.at(0, 0) = g.D;
  proj.at(0, 2) = (static_cast<double>(g.nu) - 1.0) * g.du / 2.0;
  proj.at(1, 1) = g.D;
  proj.at(1, 2) = (static_cast<double>(g.nv) - 1.0) * g.dv / 2.0;
  proj.at(2, 2) = 1.0;
  proj.at(3, 3) = 1.0;
  return Mat4::diagonal(1.0 / g.du, 1.0 / g.dv, 1.0, 1.0) * proj;
}

Mat34 make_projection_matrix(const CbctGeometry& g, double beta) {
  return Mat34::from_mat4(make_m1(g) * make_mrot(g, beta) * make_m0(g));
}

std::vector<Mat34> make_all_projection_matrices(const CbctGeometry& g) {
  std::vector<Mat34> out;
  out.reserve(g.np);
  for (std::size_t s = 0; s < g.np; ++s) {
    out.push_back(make_projection_matrix(g, g.beta(s)));
  }
  return out;
}

ProjectedPoint project_voxel(const Mat34& p, double i, double j, double k) {
  const Vec3 xyz = p * Vec4{i, j, k, 1.0};
  IFDK_ASSERT_MSG(xyz.z != 0.0, "voxel projects through the source");
  return {xyz.x / xyz.z, xyz.y / xyz.z, xyz.z};
}

double theorem3_depth(const CbctGeometry& g, double beta, double i, double j) {
  const double ci = (static_cast<double>(g.nx) - 1.0) / 2.0;
  const double cj = (static_cast<double>(g.ny) - 1.0) / 2.0;
  return g.d + std::sin(beta) * (i - ci) * g.dx -
         std::cos(beta) * (j - cj) * g.dy;
}

Vec3 source_position(const CbctGeometry& g, double beta) {
  // Gantry-frame source is the origin; world = Rz(-beta) * A^-1 * gantry with
  // A^-1 (X,Y,Z) = (X, Z - d, -Y). A^-1 * 0 = (0, -d, 0).
  const double s = std::sin(beta);
  const double c = std::cos(beta);
  return {-g.d * s, -g.d * c, 0.0};
}

Vec3 detector_pixel_position(const CbctGeometry& g, double beta, double u,
                             double v) {
  // Detector pixel (u, v) sits at gantry coordinates
  // ((u - cu) * Du, (v - cv) * Dv, D); see make_m1.
  const double cu = (static_cast<double>(g.nu) - 1.0) / 2.0;
  const double cv = (static_cast<double>(g.nv) - 1.0) / 2.0;
  const double gx = (u - cu) * g.du;
  const double gy = (v - cv) * g.dv;
  const double gz = g.D;
  // A^-1: (X, Y, Z) -> (X, Z - d, -Y); then rotate by -beta about Z.
  const double wx = gx;
  const double wy = gz - g.d;
  const double wz = -gy;
  const double s = std::sin(-beta);
  const double c = std::cos(-beta);
  return {wx * c - wy * s, wx * s + wy * c, wz};
}

Vec3 voxel_world_position(const CbctGeometry& g, double i, double j, double k) {
  const Mat4 m0 = make_m0(g);
  const Vec4 w = m0 * Vec4{i, j, k, 1.0};
  return {w.x, w.y, w.z};
}

}  // namespace ifdk::geo
