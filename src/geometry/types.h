// Shared dimension descriptors for projections and volumes.
//
// Terminology follows paper Section 2.3: an image reconstruction *problem* is
// Nu x Nv x Np -> Nx x Ny x Nz (input projections -> output volume).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ifdk {

/// Dimensions of the projection stack (the input).
struct ProjDims {
  std::size_t nu = 0;  ///< projection width  (pixels, U axis)
  std::size_t nv = 0;  ///< projection height (pixels, V axis)
  std::size_t np = 0;  ///< number of projections

  std::size_t pixels_per_projection() const { return nu * nv; }
  std::size_t total_pixels() const { return nu * nv * np; }
  std::size_t bytes_per_projection() const {
    return pixels_per_projection() * sizeof(float);
  }
  std::size_t total_bytes() const { return total_pixels() * sizeof(float); }

  bool operator==(const ProjDims&) const = default;
};

/// Dimensions of the reconstructed volume (the output).
struct VolDims {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;

  std::size_t voxels() const { return nx * ny * nz; }
  std::size_t bytes() const { return voxels() * sizeof(float); }

  bool operator==(const VolDims&) const = default;
};

/// A full reconstruction problem, e.g. 2048x2048x4096 -> 4096^3.
struct Problem {
  ProjDims in;
  VolDims out;

  /// alpha as defined under Table 4: ratio of input size to output size.
  double alpha() const {
    return static_cast<double>(in.total_pixels()) /
           static_cast<double>(out.voxels());
  }

  /// Total voxel updates = Nx*Ny*Nz*Np (the numerator of GUPS).
  double updates() const {
    return static_cast<double>(out.voxels()) * static_cast<double>(in.np);
  }

  std::string to_string() const;
};

}  // namespace ifdk
