#include "geometry/types.h"

#include <cstdio>
#include <sstream>

namespace ifdk {

std::string Problem::to_string() const {
  std::ostringstream s;
  s << in.nu << "x" << in.nv << "x" << in.np << " -> " << out.nx << "x"
    << out.ny << "x" << out.nz;
  return s.str();
}

}  // namespace ifdk
