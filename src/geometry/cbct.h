// CBCT geometry (paper Fig. 1 / Table 1) and the projection-matrix chain of
// Section 3.2.1:
//
//   P-hat = M1 * Mrot * M0,   P = P-hat[0:3]
//
// with M0 the volume->gantry transform, Mrot the gantry rotation about Z plus
// the source distance translation, and M1 the perspective mapping onto the
// flat panel detector (FPD).
//
// Units: voxel pitches Dx/Dy/Dz and pixel pitches Du/Dv are mm per
// voxel/pixel; the distances d (source to rotation axis) and D (source to FPD
// center) are mm. Projection of a voxel index (i,j,k) is
//   [x y z]^T = P [i j k 1]^T ,  u = x/z , v = y/z   (detector pixels).
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/types.h"
#include "geometry/vec.h"

namespace ifdk::geo {

/// Full CBCT parameter set (paper Table 1).
struct CbctGeometry {
  // Projections (input).
  std::size_t np = 0;  ///< number of projections over the full 2*pi scan
  std::size_t nu = 0;  ///< FPD width in pixels
  std::size_t nv = 0;  ///< FPD height in pixels
  double du = 1.0;     ///< FPD pixel pitch, U direction [mm/pixel]
  double dv = 1.0;     ///< FPD pixel pitch, V direction [mm/pixel]

  // Gantry.
  double d = 0.0;  ///< distance X-ray source -> rotation (Z) axis [mm]
  double D = 0.0;  ///< distance X-ray source -> FPD center [mm]

  // Volume (output).
  std::size_t nx = 0, ny = 0, nz = 0;  ///< voxels per dimension
  double dx = 1.0, dy = 1.0, dz = 1.0; ///< voxel pitch [mm/voxel]

  /// Rotation step angle theta = 2*pi/Np (Table 1).
  double theta() const;

  /// Gantry angle of projection index s: beta = s * theta.
  double beta(std::size_t s) const;

  ProjDims proj_dims() const { return {nu, nv, np}; }
  VolDims vol_dims() const { return {nx, ny, nz}; }
  Problem problem() const { return {proj_dims(), vol_dims()}; }

  /// Magnification factor at the isocenter, D/d.
  double magnification() const { return D / d; }

  /// Throws ifdk::ConfigError when the parameter set is inconsistent
  /// (zero sizes, non-positive distances, detector too small to cover the
  /// magnified volume footprint, ...).
  void validate() const;

  /// Field-wise equality — what streaming uses to decide whether two
  /// consecutive volumes can share filter/back-projection engines.
  bool operator==(const CbctGeometry&) const = default;
};

/// Builds a consistent geometry for the given problem sizes with standard
/// proportions: the volume is centered at the isocenter, the source orbit
/// clears the volume diagonal, and the FPD covers the magnified footprint.
/// This mirrors how RabbitCT/RTK demo geometries are generated and is what
/// every example/test/bench in this repository uses unless stated otherwise.
CbctGeometry make_standard_geometry(const Problem& problem);

/// M0 of Section 3.2.1: voxel indices -> physical gantry coordinates
/// (includes the Y/Z axis flips of the paper's convention).
Mat4 make_m0(const CbctGeometry& g);

/// Mrot of Section 3.2.1: rotation by beta about Z, then the axis swap that
/// points the optical axis at the detector plus the source distance d.
Mat4 make_mrot(const CbctGeometry& g, double beta);

/// M1 of Section 3.2.1: perspective projection onto the FPD in pixel units.
Mat4 make_m1(const CbctGeometry& g);

/// The paper's Eq. 2: P = (M1 * Mrot * M0)[0:3] for gantry angle beta.
Mat34 make_projection_matrix(const CbctGeometry& g, double beta);

/// Projection matrices for all Np angles (P_s for s in [0, Np)).
std::vector<Mat34> make_all_projection_matrices(const CbctGeometry& g);

/// Applies Eq. 1: maps voxel index (i,j,k) through P to detector coordinates
/// (u, v) and returns the homogeneous depth z as well.
struct ProjectedPoint {
  double u = 0;
  double v = 0;
  double z = 0;
};
ProjectedPoint project_voxel(const Mat34& p, double i, double j, double k);

/// Eq. 3 (Theorem 3): the closed-form depth
/// z = d + sin(beta)*(i - (Nx-1)/2)*Dx - cos(beta)*(j - (Ny-1)/2)*Dy.
double theorem3_depth(const CbctGeometry& g, double beta, double i, double j);

// --- World-frame helpers (used by the forward projectors) -----------------
//
// "World" is the static physical frame of the volume: millimetres, origin at
// the volume center O, axes as in Fig. 1b. The source and detector rotate
// around the Z axis in this frame.

/// X-ray source position at gantry angle beta.
Vec3 source_position(const CbctGeometry& g, double beta);

/// Center of detector pixel (u, v) at gantry angle beta.
Vec3 detector_pixel_position(const CbctGeometry& g, double beta, double u,
                             double v);

/// Physical position of voxel index (i,j,k) (fractional indices allowed).
Vec3 voxel_world_position(const CbctGeometry& g, double i, double j, double k);

}  // namespace ifdk::geo
