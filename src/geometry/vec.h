// Small fixed-size vector/matrix types for the CBCT geometry chain.
//
// Matrix setup runs in double precision (the paper builds P on the host);
// kernels consume the 3x4 result as float rows, mirroring the CUDA
// `__constant float4 ProjMat[32][3]` of Listing 1.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "common/error.h"

namespace ifdk::geo {

struct Vec2 {
  double u = 0, v = 0;
};

struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const { return std::sqrt(dot(*this)); }
  Vec3 normalized() const {
    const double n = norm();
    IFDK_ASSERT(n > 0);
    return {x / n, y / n, z / n};
  }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
};

struct Vec4 {
  double x = 0, y = 0, z = 0, w = 0;

  double dot(const Vec4& o) const {
    return x * o.x + y * o.y + z * o.z + w * o.w;
  }
};

/// Row-major 4x4 matrix.
class Mat4 {
 public:
  Mat4() = default;

  static Mat4 identity() {
    Mat4 m;
    for (int i = 0; i < 4; ++i) m.at(i, i) = 1.0;
    return m;
  }

  static Mat4 diagonal(double a, double b, double c, double d) {
    Mat4 m;
    m.at(0, 0) = a;
    m.at(1, 1) = b;
    m.at(2, 2) = c;
    m.at(3, 3) = d;
    return m;
  }

  /// Rotation about the Z axis by `beta` radians.
  static Mat4 rotation_z(double beta) {
    Mat4 m = identity();
    m.at(0, 0) = std::cos(beta);
    m.at(0, 1) = -std::sin(beta);
    m.at(1, 0) = std::sin(beta);
    m.at(1, 1) = std::cos(beta);
    return m;
  }

  double& at(int r, int c) {
    IFDK_ASSERT(r >= 0 && r < 4 && c >= 0 && c < 4);
    return m_[static_cast<std::size_t>(r) * 4 + static_cast<std::size_t>(c)];
  }
  double at(int r, int c) const {
    IFDK_ASSERT(r >= 0 && r < 4 && c >= 0 && c < 4);
    return m_[static_cast<std::size_t>(r) * 4 + static_cast<std::size_t>(c)];
  }

  Mat4 operator*(const Mat4& o) const {
    Mat4 out;
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        double acc = 0;
        for (int k = 0; k < 4; ++k) acc += at(r, k) * o.at(k, c);
        out.at(r, c) = acc;
      }
    }
    return out;
  }

  Vec4 operator*(const Vec4& v) const {
    return {at(0, 0) * v.x + at(0, 1) * v.y + at(0, 2) * v.z + at(0, 3) * v.w,
            at(1, 0) * v.x + at(1, 1) * v.y + at(1, 2) * v.z + at(1, 3) * v.w,
            at(2, 0) * v.x + at(2, 1) * v.y + at(2, 2) * v.z + at(2, 3) * v.w,
            at(3, 0) * v.x + at(3, 1) * v.y + at(3, 2) * v.z + at(3, 3) * v.w};
  }

 private:
  std::array<double, 16> m_{};
};

/// Row-major 3x4 projection matrix (the paper's P, Eq. 2: the first three
/// rows of P-hat). Row accessors return Vec4 so kernels can phrase the
/// projection as inner products exactly like Algorithm 2 line 6.
class Mat34 {
 public:
  Mat34() = default;

  /// Truncates a 4x4 homogeneous matrix to its first three rows.
  static Mat34 from_mat4(const Mat4& m) {
    Mat34 out;
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 4; ++c) out.at(r, c) = m.at(r, c);
    }
    return out;
  }

  double& at(int r, int c) {
    IFDK_ASSERT(r >= 0 && r < 3 && c >= 0 && c < 4);
    return m_[static_cast<std::size_t>(r) * 4 + static_cast<std::size_t>(c)];
  }
  double at(int r, int c) const {
    IFDK_ASSERT(r >= 0 && r < 3 && c >= 0 && c < 4);
    return m_[static_cast<std::size_t>(r) * 4 + static_cast<std::size_t>(c)];
  }

  Vec4 row(int r) const { return {at(r, 0), at(r, 1), at(r, 2), at(r, 3)}; }

  Vec3 operator*(const Vec4& v) const {
    return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
  }

  /// Flat float copy, row-major, for kernel consumption (12 floats).
  std::array<float, 12> to_float() const {
    std::array<float, 12> out{};
    for (std::size_t i = 0; i < 12; ++i) out[i] = static_cast<float>(m_[i]);
    return out;
  }

 private:
  std::array<double, 12> m_{};
};

}  // namespace ifdk::geo
