#include "cluster/simulator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/math_util.h"
#include "gpusim/kernel_model.h"

namespace ifdk::cluster {

namespace {

/// Per-round stage durations of the Fig. 4a pipeline on an R x C grid —
/// shared by the single-volume recurrence (simulate / simulate_plan) and
/// the streaming recurrence (simulate_stream).
struct RoundCosts {
  double t_load = 0;
  double t_filter = 0;
  double t_ag = 0;
  double t_h2d = 0;
  double t_bp = 0;
};

RoundCosts round_costs(const Problem& problem, int r, int c,
                       const SimConfig& config) {
  const perfmodel::MicroBench& mb = config.mb;
  const double pb = static_cast<double>(problem.in.bytes_per_projection());
  const double ranks = static_cast<double>(r) * static_cast<double>(c);

  RoundCosts rc;
  // Every rank loads one projection per round; all ranks share the PFS link.
  rc.t_load = pb * ranks / mb.bw_load;
  // One projection filtered per round; a node's THflt is shared by its
  // gpus_per_node ranks.
  rc.t_filter = static_cast<double>(mb.gpus_per_node) / mb.th_flt;
  // Ring AllGather of R contributions of pb bytes, with congestion growing
  // in the group size.
  const double ag_bw = config.allgather_bandwidth /
                       (1.0 + static_cast<double>(r) /
                                  config.allgather_congestion_r);
  const double multi_column =
      1.0 + config.allgather_multi_column * (1.0 - 1.0 / static_cast<double>(c));
  rc.t_ag = static_cast<double>(r) * pb / ag_bw * multi_column;
  // H2D of the round's R projections over the node's PCIe links.
  rc.t_h2d = static_cast<double>(r) * pb *
             static_cast<double>(mb.gpus_per_node) /
             (mb.bw_pcie * static_cast<double>(mb.pcie_per_node));
  // Back-projection of R projections into this rank's slab pair.
  const double slab_voxels =
      static_cast<double>(problem.out.voxels()) / static_cast<double>(r);
  double kernel_gups = mb.bp_gups;
  const std::size_t local_depth = std::max<std::size_t>(
      1, problem.out.nz / static_cast<std::size_t>(r));
  if (config.use_kernel_model) {
    static const gpusim::KernelModel model;
    // The kernel rate is a per-launch property: one launch back-projects one
    // Nbatch-projection batch into the slab, so alpha is computed against
    // the batch, not the whole scan (which would make the rate depend on
    // Np, which GUPS by definition does not).
    const Problem slab{{problem.in.nu, problem.in.nv, mb.batch},
                       {problem.out.nx, problem.out.ny, local_depth}};
    kernel_gups = model.predict_gups(bp::KernelVariant::kL1Tran, slab);
  }
  // Flat-slab locality penalty (see header).
  kernel_gups /= 1.0 + static_cast<double>(problem.out.nx) /
                           static_cast<double>(local_depth) /
                           config.aspect_penalty_scale;
  rc.t_bp =
      static_cast<double>(r) * slab_voxels / (kernel_gups * 1073741824.0);
  return rc;
}

/// Post-phase (Fig. 4b) durations. t_reduce excludes the one-time cold-call
/// penalty — the caller decides when a communicator is cold (once per run
/// for simulate(); once per distinct grid for simulate_stream, matching the
/// runtime's communicator caching across re-splits).
struct PostCosts {
  double t_d2h = 0;
  double t_reduce = 0;
  double t_store = 0;
};

PostCosts post_costs(const Problem& problem, int r, int c,
                     const SimConfig& config) {
  const perfmodel::MicroBench& mb = config.mb;
  const double out_bytes = static_cast<double>(problem.out.bytes());

  PostCosts pc;
  pc.t_d2h = out_bytes * static_cast<double>(mb.gpus_per_node) /
             (static_cast<double>(r) * mb.bw_pcie *
              static_cast<double>(mb.pcie_per_node) * config.d2h_efficiency);
  // The framed wire moves out_bytes / ratio; the fold itself is unchanged
  // (the reduce throughput micro-benchmark is bandwidth-dominated, which is
  // exactly where compressed frames buy their time back).
  const double wire_bytes = out_bytes / config.wire_compression_ratio;
  pc.t_reduce =
      c > 1 ? wire_bytes / (static_cast<double>(r) * mb.th_reduce) : 0.0;
  // The compressed store writes serialized objects: both the bytes moved
  // and the stripe-efficiency slice size shrink by the store ratio.
  const double slice_bytes =
      static_cast<double>(problem.out.nx * problem.out.ny * sizeof(float)) /
      config.store_compression_ratio;
  const double store_eff =
      slice_bytes / (slice_bytes + config.store_halfpoint_bytes);
  pc.t_store =
      out_bytes / config.store_compression_ratio / (mb.bw_store * store_eff);
  return pc;
}

/// The shared single-volume body: Fig. 4a recurrence + post phase for a
/// resolved (r, c, rounds) decomposition of `problem`.
SimResult simulate_grid(const Problem& problem, int r, int c,
                        std::size_t rounds, const SimConfig& config) {
  IFDK_REQUIRE(rounds >= 1, "fewer projections than ranks");

  SimResult out;
  out.grid = {r, c};
  out.rounds = rounds;

  const RoundCosts rc = round_costs(problem, r, c, config);

  // ---- Pipeline recurrence (Fig. 4a) -------------------------------------

  out.timeline.reserve(std::min<std::size_t>(rounds, 1u << 16));
  std::vector<double> f_hist(rounds + 1, 0.0);
  double f_prev = config.startup_s;
  double a_prev = config.startup_s;
  double b_prev = config.startup_s;
  for (std::size_t t = 0; t < rounds; ++t) {
    // Back-pressure: the filtering thread stalls when the queue is full
    // (it can be at most queue_capacity rounds ahead of the Main thread).
    double f_gate = f_prev;
    if (t >= config.queue_capacity) {
      f_gate = std::max(f_gate, f_hist[t - config.queue_capacity]);
    }
    const double f_t = f_gate + rc.t_load + rc.t_filter;
    const double a_t = std::max(f_t, a_prev) + rc.t_ag;
    // The gamma term models CPU/memory contention between the Main thread's
    // in-flight AllGather and the Bp thread; the last round has no
    // concurrent AllGather left to contend with.
    const double interference =
        (t + 1 < rounds) ? config.gamma * rc.t_ag : 0.0;
    const double b_t = std::max(a_t, b_prev) + rc.t_h2d + rc.t_bp + interference;
    f_hist[t] = a_t;  // main-thread progress gates the filtering queue
    f_prev = f_t;
    a_prev = a_t;
    b_prev = b_t;
    if (out.timeline.size() < (1u << 16)) {
      out.timeline.push_back(RoundTimes{f_t, a_t, b_t});
    }
  }

  out.t_load = static_cast<double>(rounds) * rc.t_load;
  out.t_flt = static_cast<double>(rounds) * (rc.t_load + rc.t_filter);
  out.t_allgather = static_cast<double>(rounds) * rc.t_ag;
  out.t_bp = static_cast<double>(rounds) * (rc.t_h2d + rc.t_bp);
  out.t_compute = b_prev;
  out.delta = (out.t_flt + out.t_allgather + out.t_bp) / out.t_compute;

  // ---- Post phase (Fig. 4b) -----------------------------------------------

  const PostCosts pc = post_costs(problem, r, c, config);
  out.t_d2h = pc.t_d2h;
  out.t_reduce =
      c > 1 ? pc.t_reduce + config.reduce_first_call_penalty_s : 0.0;
  out.t_store = pc.t_store;

  if (config.overlap_post) {
    // D2H/Reduce of early slab regions can start once the pipeline's first
    // round has produced data; the hideable window is the compute span past
    // that point. Whatever does not fit stays serial.
    const double first_round_done =
        out.timeline.empty() ? 0.0 : out.timeline.front().bp_done;
    const double window = std::max(0.0, out.t_compute - first_round_done);
    const double hidden = std::min(out.t_d2h + out.t_reduce, window);
    out.t_runtime =
        out.t_compute + (out.t_d2h + out.t_reduce - hidden) + out.t_store;
  } else {
    out.t_runtime = out.t_compute + out.t_d2h + out.t_reduce + out.t_store;
  }
  out.gups = gups(problem.out.nx, problem.out.ny, problem.out.nz,
                  problem.in.np, out.t_runtime);
  out.gups_compute = gups(problem.out.nx, problem.out.ny, problem.out.nz,
                          problem.in.np, out.t_runtime - out.t_store);
  return out;
}

}  // namespace

SimResult simulate(const Problem& problem, int gpus, const SimConfig& config,
                   int rows) {
  const int r = rows > 0 ? rows : perfmodel::select_rows(problem, config.mb);
  IFDK_REQUIRE(gpus >= r && gpus % r == 0,
               "GPU count must be a positive multiple of R");
  const int c = gpus / r;
  const std::size_t rounds = static_cast<std::size_t>(
      static_cast<double>(problem.in.np) /
      (static_cast<double>(c) * static_cast<double>(r)));
  return simulate_grid(problem, r, c, rounds, config);
}

SimResult simulate_plan(const DecompositionPlan& plan,
                        const SimConfig& config) {
  return simulate_grid(plan.geometry.problem(), plan.grid.rows,
                       plan.grid.columns, plan.rounds, config);
}

StreamSimResult simulate_stream(std::span<const DecompositionPlan> plans,
                                const SimConfig& config) {
  StreamSimResult out;
  out.volumes = plans.size();
  if (plans.empty()) return out;
  out.ranks = plans[0].ranks();
  std::size_t total_rounds = 0;
  for (const DecompositionPlan& plan : plans) {
    IFDK_REQUIRE(plan.ranks() == out.ranks,
                 "all plans of a stream must share one rank world");
    IFDK_REQUIRE(plan.rounds >= 1, "fewer projections than ranks");
    total_rounds += plan.rounds;
  }
  out.epochs.reserve(plans.size());

  // The Fig. 4a recurrence, carried ACROSS volume boundaries: the worker
  // keeps filtering/gathering and the bp thread keeps back-projecting while
  // earlier volumes drain through the reduce thread. a_hist implements the
  // bounded-queue gate over the global round index.
  double f = config.startup_s;
  double a = config.startup_s;
  double b = config.startup_s;
  std::vector<double> a_hist;
  a_hist.reserve(total_rounds);
  std::size_t g = 0;  // global round index across the stream

  // Reduce-thread chain: post_start gates the depth-1 slab handoff,
  // post_done the next epoch's reduce. A grid first seen in the stream runs
  // on cold communicators and pays the reduce cold-call penalty; a re-split
  // BACK to an earlier grid reuses its (warm) communicators, exactly like
  // the runtime's per-grid comm cache.
  double post_start_prev = 0;
  double post_done_prev = 0;
  std::set<int> warm_grids;

  for (std::size_t v = 0; v < plans.size(); ++v) {
    const DecompositionPlan& plan = plans[v];
    const Problem problem = plan.geometry.problem();
    const int r = plan.grid.rows;
    const int c = plan.grid.columns;
    const bool regrid = v > 0 && !plans[v - 1].same_grid(plan);
    if (regrid) {
      // Engine rebuild + communicator switch on the worker and bp chains.
      ++out.regrids;
      f += config.replan_s;
      b += config.replan_s;
    }

    const RoundCosts rc = round_costs(problem, r, c, config);
    for (std::size_t t = 0; t < plan.rounds; ++t, ++g) {
      double f_gate = f;
      if (g >= config.queue_capacity) {
        f_gate = std::max(f_gate, a_hist[g - config.queue_capacity]);
      }
      const double f_t = f_gate + rc.t_load + rc.t_filter;
      const double a_t = std::max(f_t, a) + rc.t_ag;
      // Unlike the single-volume run, the next volume's AllGather follows
      // immediately — only the stream's very last round is contention-free.
      const double interference =
          (g + 1 < total_rounds) ? config.gamma * rc.t_ag : 0.0;
      const double b_t = std::max(a_t, b) + rc.t_h2d + rc.t_bp + interference;
      a_hist.push_back(a_t);
      f = f_t;
      a = a_t;
      b = b_t;
    }

    const PostCosts pc = post_costs(problem, r, c, config);
    // run_streaming charges D2H on the Bp-thread before the slab handoff.
    b += pc.t_d2h;
    const double bp_done = b;
    // Depth-1 slab queue: the push completes once the reduce thread popped
    // the previous volume's slab; the bp thread resumes the next volume
    // only then (at most one volume ahead).
    const double push_done = std::max(bp_done, post_start_prev);
    const double post_start = std::max(push_done, post_done_prev);
    double t_reduce = pc.t_reduce;
    if (c > 1 && warm_grids.insert(r).second) {
      t_reduce += config.reduce_first_call_penalty_s;
    }
    const double done = post_start + t_reduce + pc.t_store;

    out.epochs.push_back(
        EpochSim{plan.grid, plan.rounds, regrid, bp_done, post_start, done});
    b = push_done;
    post_start_prev = post_start;
    post_done_prev = done;
  }

  out.t_total = post_done_prev;
  out.volumes_per_second =
      out.t_total > 0 ? static_cast<double>(out.volumes) / out.t_total : 0;
  return out;
}

std::vector<double> predict_queue_completion(
    std::span<const DecompositionPlan> plans, const SimConfig& config) {
  std::vector<double> done;
  if (plans.empty()) return done;
  const StreamSimResult sim = simulate_stream(plans, config);
  done.reserve(sim.epochs.size());
  for (const EpochSim& epoch : sim.epochs) {
    done.push_back(epoch.done);
  }
  return done;
}

IterSimResult simulate_iterative(const DecompositionPlan& plan,
                                 int iterations, int subsets,
                                 const SimConfig& config) {
  IFDK_REQUIRE(iterations >= 1, "iterations must be at least 1");
  IFDK_REQUIRE(subsets >= 1, "subsets must be at least 1");
  const perfmodel::MicroBench& mb = config.mb;
  const Problem problem = plan.geometry.problem();
  const double ranks = static_cast<double>(plan.ranks());
  const double rounds = static_cast<double>(plan.rounds);
  const double pb = static_cast<double>(problem.in.bytes_per_projection());
  const double voxels = static_cast<double>(problem.out.voxels());
  const double vol_bytes = static_cast<double>(problem.out.bytes());

  IterSimResult out;
  out.grid = plan.grid;

  // One sweep over a subset: each rank forward-projects its rounds/subsets
  // owned views (each ray marches ~2*max(N) samples across the volume) and
  // back-projects the correction into the full replicated volume.
  const double views_per_sweep = rounds / static_cast<double>(subsets);
  const double samples_per_view =
      static_cast<double>(plan.pixels) * 2.0 *
      static_cast<double>(std::max({problem.out.nx, problem.out.ny,
                                    problem.out.nz}));
  const double t_fwd_sweep =
      views_per_sweep * samples_per_view / config.iter_fp_samples_per_s;
  const double t_bp_sweep =
      views_per_sweep * voxels / config.iter_bp_updates_per_s;
  // Volume all-reduce per sweep (tree ireduce + bcast); free at one rank.
  const double t_allreduce =
      plan.ranks() > 1 ? 2.0 * vol_bytes / (ranks * mb.th_reduce) : 0.0;

  out.t_iteration = static_cast<double>(subsets) *
                    (t_fwd_sweep + t_bp_sweep + t_allreduce);

  // Setup: the shard load (all ranks share the PFS link), the normalization
  // back-projections (one B*1 pass over every view, spread across ranks)
  // and their per-subset all-reduces.
  const double t_load = rounds * pb * ranks / mb.bw_load;
  const double t_norm = rounds * voxels / config.iter_bp_updates_per_s +
                        static_cast<double>(subsets) * t_allreduce;
  out.t_setup = t_load + t_norm;

  // Rank 0's serial slice store of the replicated volume.
  const double slice_bytes =
      static_cast<double>(problem.out.nx * problem.out.ny * sizeof(float));
  const double store_eff =
      slice_bytes / (slice_bytes + config.store_halfpoint_bytes);
  const double t_store = vol_bytes / (mb.bw_store * store_eff);

  out.t_total = config.startup_s + out.t_setup +
                static_cast<double>(iterations) * out.t_iteration + t_store;
  return out;
}

std::vector<double> predict_queue_completion(std::span<const QueuedJob> jobs,
                                             const SimConfig& config) {
  std::vector<double> done(jobs.size(), 0.0);
  double clock = 0;
  std::size_t i = 0;
  while (i < jobs.size()) {
    if (jobs[i].iterative) {
      // Iterative jobs dispatch one at a time (no cross-job overlap).
      clock += simulate_iterative(jobs[i].plan, jobs[i].iterations,
                                  jobs[i].subsets, config)
                   .t_total;
      done[i] = clock;
      ++i;
      continue;
    }
    // A contiguous FDK run streams as one batch: its epochs overlap exactly
    // as simulate_stream models, then the next queue entry starts after the
    // batch's last volume is stored.
    std::vector<DecompositionPlan> plans;
    const std::size_t first = i;
    while (i < jobs.size() && !jobs[i].iterative) {
      plans.push_back(jobs[i].plan);
      ++i;
    }
    const StreamSimResult sim = simulate_stream(plans, config);
    for (std::size_t v = 0; v < sim.epochs.size(); ++v) {
      done[first + v] = clock + sim.epochs[v].done;
    }
    clock += sim.t_total;
  }
  return done;
}

}  // namespace ifdk::cluster
