#include "cluster/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "gpusim/kernel_model.h"

namespace ifdk::cluster {

SimResult simulate(const Problem& problem, int gpus, const SimConfig& config,
                   int rows) {
  const perfmodel::MicroBench& mb = config.mb;
  const int r = rows > 0 ? rows : perfmodel::select_rows(problem, mb);
  IFDK_REQUIRE(gpus >= r && gpus % r == 0,
               "GPU count must be a positive multiple of R");
  const int c = gpus / r;

  SimResult out;
  out.grid = {r, c};

  const double pb = static_cast<double>(problem.in.bytes_per_projection());
  const double np = static_cast<double>(problem.in.np);
  const double ranks = static_cast<double>(gpus);
  const std::size_t rounds = static_cast<std::size_t>(
      np / (static_cast<double>(c) * static_cast<double>(r)));
  IFDK_REQUIRE(rounds >= 1, "fewer projections than ranks");
  out.rounds = rounds;

  // ---- Per-round stage durations -----------------------------------------

  // Every rank loads one projection per round; all ranks share the PFS link.
  const double t_load = pb * ranks / mb.bw_load;
  // One projection filtered per round; a node's THflt is shared by its
  // gpus_per_node ranks.
  const double t_filter = static_cast<double>(mb.gpus_per_node) / mb.th_flt;
  // Ring AllGather of R contributions of pb bytes, with congestion growing
  // in the group size.
  const double ag_bw = config.allgather_bandwidth /
                       (1.0 + static_cast<double>(r) /
                                  config.allgather_congestion_r);
  const double multi_column =
      1.0 + config.allgather_multi_column * (1.0 - 1.0 / static_cast<double>(c));
  const double t_ag = static_cast<double>(r) * pb / ag_bw * multi_column;
  // H2D of the round's R projections over the node's PCIe links.
  const double t_h2d = static_cast<double>(r) * pb *
                       static_cast<double>(mb.gpus_per_node) /
                       (mb.bw_pcie * static_cast<double>(mb.pcie_per_node));
  // Back-projection of R projections into this rank's slab pair.
  const double slab_voxels =
      static_cast<double>(problem.out.voxels()) / static_cast<double>(r);
  double kernel_gups = mb.bp_gups;
  const std::size_t local_depth = std::max<std::size_t>(
      1, problem.out.nz / static_cast<std::size_t>(r));
  if (config.use_kernel_model) {
    static const gpusim::KernelModel model;
    // The kernel rate is a per-launch property: one launch back-projects one
    // Nbatch-projection batch into the slab, so alpha is computed against
    // the batch, not the whole scan (which would make the rate depend on
    // Np, which GUPS by definition does not).
    const Problem slab{{problem.in.nu, problem.in.nv, mb.batch},
                       {problem.out.nx, problem.out.ny, local_depth}};
    kernel_gups = model.predict_gups(bp::KernelVariant::kL1Tran, slab);
  }
  // Flat-slab locality penalty (see header).
  kernel_gups /= 1.0 + static_cast<double>(problem.out.nx) /
                           static_cast<double>(local_depth) /
                           config.aspect_penalty_scale;
  const double t_bp =
      static_cast<double>(r) * slab_voxels / (kernel_gups * 1073741824.0);

  // ---- Pipeline recurrence (Fig. 4a) -------------------------------------

  out.timeline.reserve(std::min<std::size_t>(rounds, 1u << 16));
  std::vector<double> f_hist(rounds + 1, 0.0);
  double f_prev = config.startup_s;
  double a_prev = config.startup_s;
  double b_prev = config.startup_s;
  for (std::size_t t = 0; t < rounds; ++t) {
    // Back-pressure: the filtering thread stalls when the queue is full
    // (it can be at most queue_capacity rounds ahead of the Main thread).
    double f_gate = f_prev;
    if (t >= config.queue_capacity) {
      f_gate = std::max(f_gate, f_hist[t - config.queue_capacity]);
    }
    const double f_t = f_gate + t_load + t_filter;
    const double a_t = std::max(f_t, a_prev) + t_ag;
    // The gamma term models CPU/memory contention between the Main thread's
    // in-flight AllGather and the Bp thread; the last round has no
    // concurrent AllGather left to contend with.
    const double interference =
        (t + 1 < rounds) ? config.gamma * t_ag : 0.0;
    const double b_t = std::max(a_t, b_prev) + t_h2d + t_bp + interference;
    f_hist[t] = a_t;  // main-thread progress gates the filtering queue
    f_prev = f_t;
    a_prev = a_t;
    b_prev = b_t;
    if (out.timeline.size() < (1u << 16)) {
      out.timeline.push_back(RoundTimes{f_t, a_t, b_t});
    }
  }

  out.t_load = static_cast<double>(rounds) * t_load;
  out.t_flt = static_cast<double>(rounds) * (t_load + t_filter);
  out.t_allgather = static_cast<double>(rounds) * t_ag;
  out.t_bp = static_cast<double>(rounds) * (t_h2d + t_bp);
  out.t_compute = b_prev;
  out.delta = (out.t_flt + out.t_allgather + out.t_bp) / out.t_compute;

  // ---- Post phase (Fig. 4b) -----------------------------------------------

  const double out_bytes = static_cast<double>(problem.out.bytes());
  out.t_d2h = out_bytes * static_cast<double>(mb.gpus_per_node) /
              (static_cast<double>(r) * mb.bw_pcie *
               static_cast<double>(mb.pcie_per_node) * config.d2h_efficiency);
  out.t_reduce = c > 1 ? out_bytes / (static_cast<double>(r) * mb.th_reduce) +
                             config.reduce_first_call_penalty_s
                       : 0.0;
  const double slice_bytes =
      static_cast<double>(problem.out.nx * problem.out.ny * sizeof(float));
  const double store_eff =
      slice_bytes / (slice_bytes + config.store_halfpoint_bytes);
  out.t_store = out_bytes / (mb.bw_store * store_eff);

  if (config.overlap_post) {
    // D2H/Reduce of early slab regions can start once the pipeline's first
    // round has produced data; the hideable window is the compute span past
    // that point. Whatever does not fit stays serial.
    const double first_round_done =
        out.timeline.empty() ? 0.0 : out.timeline.front().bp_done;
    const double window = std::max(0.0, out.t_compute - first_round_done);
    const double hidden = std::min(out.t_d2h + out.t_reduce, window);
    out.t_runtime =
        out.t_compute + (out.t_d2h + out.t_reduce - hidden) + out.t_store;
  } else {
    out.t_runtime = out.t_compute + out.t_d2h + out.t_reduce + out.t_store;
  }
  out.gups = gups(problem.out.nx, problem.out.ny, problem.out.nz,
                  problem.in.np, out.t_runtime);
  out.gups_compute = gups(problem.out.nx, problem.out.ny, problem.out.nz,
                          problem.in.np, out.t_runtime - out.t_store);
  return out;
}

}  // namespace ifdk::cluster
