// Virtual-time cluster simulator for iFDK at scale.
//
// The functional framework (src/ifdk) runs the real pipeline on real data but
// cannot be executed with 2,048 ranks on one machine at 4K/8K sizes. This
// module replays the *timing* of the same pipeline in virtual time: every
// rank runs the three-thread pipeline of Fig. 4a as a per-round recurrence
//
//   F_t = max(F_{t-1}, A_{t-cap}) + t_load + t_filter          (Filtering)
//   A_t = max(F_t, A_{t-1}) + t_allgather                      (Main)
//   B_t = max(A_t, B_{t-1}) + t_h2d + t_bp + gamma * t_allgather  (Bp)
//
// where round t gathers R projections (one per column rank) and back-projects
// them into the rank's slab pair. The recurrence reproduces the pipelining
// effects the analytic model of Section 4.2 cannot: startup fill, queue
// back-pressure, and the delta > 1 overlap factor of Table 5.
//
// Calibration. Base constants are the paper's published micro-benchmarks
// (perfmodel::MicroBench). On top of them the simulator models the four
// measured-vs-model gaps the paper itself analyzes in Section 5.3.3:
//   * gamma        — main-thread collectives contend with the pipeline
//                    ("the data exchange between the three threads ... can
//                    have some overhead");
//   * d2h_efficiency — "contention on the PCIe switch feeding two GPUs";
//   * reduce_first_call_penalty — "the first call to the collective is
//                    typically slower";
//   * store slice/stripe mismatch — "volume slices written to PFS not tuned
//                    to the ideal stripe size" (small slices waste targets).
// AllGather is priced by a ring-bandwidth model with congestion growing in
// the group size R, calibrated to Table 5's TAllGather column.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/types.h"
#include "ifdk/plan.h"
#include "perfmodel/model.h"

namespace ifdk::cluster {

struct SimConfig {
  perfmodel::MicroBench mb;

  /// Per-rank effective AllGather ring bandwidth at small group sizes [B/s]
  /// and the group size at which congestion halves it.
  double allgather_bandwidth = 2.33e9;
  double allgather_congestion_r = 512.0;
  /// Fabric congestion between concurrent column AllGathers: per-round time
  /// is scaled by 1 + k * (1 - 1/C). Calibrated to Table 5's TAllGather
  /// column, which shrinks slower than 1/C.
  double allgather_multi_column = 0.7;

  /// Fraction of the round's AllGather time that bleeds into the Bp thread
  /// (CPU/memory contention between the Main thread's collective memcpys
  /// and the rest of the pipeline).
  double gamma = 0.55;

  /// Pipeline fill / thread+buffer setup time added once.
  double startup_s = 0.6;

  /// Slab aspect-ratio penalty scale: kernel GUPS is divided by
  /// (1 + (Nx / local_depth) / aspect_penalty_scale). Extreme flat slabs
  /// (8K at R=256: 8192 x 8192 x 32) lose locality on the V axis.
  double aspect_penalty_scale = 512.0;

  /// Measured effective fraction of nominal PCIe bandwidth for the D2H
  /// burst at the end (all four GPUs of a node drain simultaneously).
  double d2h_efficiency = 0.30;

  /// One-time cost of the single cold MPI_Reduce call.
  double reduce_first_call_penalty_s = 2.0;

  /// Store efficiency = slice / (slice + store_halfpoint_bytes): small slices
  /// under-utilize PFS stripes.
  double store_halfpoint_bytes = 10.0 * (1 << 20);

  /// Circular buffer depth (Fig. 4a) for the back-pressure term.
  std::size_t queue_capacity = 8;

  /// Streaming only: per-epoch replanning cost charged when consecutive
  /// volumes resolve to *different* R x C grids — the filter/back-projection
  /// engines are rebuilt and the ranks switch to freshly split
  /// communicators (whose first reduce pays the cold-call penalty again).
  double replan_s = 0.05;

  /// Use gpusim::KernelModel (Table-4 calibrated) for the kernel rate;
  /// false = flat mb.bp_gups.
  bool use_kernel_model = true;

  /// Bytes-on-the-wire discount of the framed row reduce
  /// (IfdkOptions::compress_wire): the reduce phase moves out_bytes /
  /// wire_compression_ratio instead of out_bytes. Feed it the MEASURED
  /// StreamingStats::wire_ratio() of a small run to forecast the win at
  /// scale; 1.0 (the default) models the uncompressed wire.
  double wire_compression_ratio = 1.0;

  /// Store-bytes discount of the compressed store path
  /// (JobSpec::compress_store): the store phase writes out_bytes /
  /// store_compression_ratio. Feed it a measured
  /// StreamingStats::store_ratio(); 1.0 models the raw store. The
  /// slice-size store efficiency is applied to the DISCOUNTED bytes — the
  /// serialized objects are what hits the PFS stripes.
  double store_compression_ratio = 1.0;

  /// Iterative workload rates (iterative::run_iterative): the forward
  /// projector's ray samples per second and the unweighted back-projector's
  /// voxel updates per second, per rank. These are the SCALAR ray-driven /
  /// bilinear kernels of src/projector and src/iterative — deliberately not
  /// the Table-4 Algorithm-4 model, which prices the FDK-weighted kernel
  /// the iterative solvers do not use.
  double iter_fp_samples_per_s = 1.5e8;
  double iter_bp_updates_per_s = 4.0e8;

  /// Paper §4.1.4 future work: "overlapping the tasks after the
  /// back-projection (the device to host copy, reduction, and storing to
  /// PFS) does not guarantee any performance improvement". When true, the
  /// simulator lets D2H + Reduce of finished slab regions hide behind the
  /// remaining compute rounds (bounded by the compute time left after the
  /// first round completes); the store stays serial (it needs the reduced
  /// volume). The bench ablation confirms the paper's scepticism: at scale
  /// Tcompute shrinks below Tpost, so there is little room to hide in.
  bool overlap_post = false;
};

/// Per-stage timeline entry for one pipeline round (drives the Fig. 4c
/// Gantt-style output).
struct RoundTimes {
  double filter_done = 0;     ///< F_t
  double allgather_done = 0;  ///< A_t
  double bp_done = 0;         ///< B_t
};

struct SimResult {
  perfmodel::GridShape grid;
  std::size_t rounds = 0;

  // Stage totals in the Table-5 sense (unoverlapped sums).
  double t_load = 0;
  double t_flt = 0;        ///< includes t_load, as Table 5 does
  double t_allgather = 0;
  double t_bp = 0;         ///< includes H2D, as Eq. (12) does

  // End-to-end phases (the Fig. 5 stacked bars).
  double t_compute = 0;    ///< pipeline span (includes startup)
  double t_d2h = 0;
  double t_reduce = 0;     ///< 0 when C == 1 (the figures' N/A)
  double t_store = 0;
  double t_runtime = 0;

  double delta = 0;        ///< (t_flt + t_allgather + t_bp) / t_compute
  double gups = 0;         ///< end-to-end GUPS on t_runtime (Eq. 19)
  double gups_compute = 0; ///< GUPS excluding the store phase

  std::vector<RoundTimes> timeline;  ///< per-round, for Fig. 4c
};

/// Simulates `problem` on `gpus` ranks; R from Eq. (7) unless `rows` > 0.
SimResult simulate(const Problem& problem, int gpus, const SimConfig& config = {},
                   int rows = 0);

/// Simulates one resolved DecompositionPlan — the same recurrence as
/// simulate(), but grid, rounds, and problem all come from the plan object
/// the real runtime executes (no second copy of the decomposition
/// arithmetic). simulate() is equivalent to building a standard-geometry
/// plan and calling this.
SimResult simulate_plan(const DecompositionPlan& plan,
                        const SimConfig& config = {});

/// One volume epoch of a simulated stream (Fig. 4a recurrence + post
/// phase), in virtual seconds since stream start.
struct EpochSim {
  perfmodel::GridShape grid;
  std::size_t rounds = 0;
  bool regrid = false;     ///< grid changed vs the previous epoch (re-split)
  double bp_done = 0;      ///< last back-projection round of this volume
  double post_start = 0;   ///< reduce thread picks the slab up
  double done = 0;         ///< volume fully reduced and stored
};

/// Virtual-time replay of a whole run_streaming call at scale.
struct StreamSimResult {
  std::size_t volumes = 0;
  int ranks = 0;
  std::size_t regrids = 0;        ///< epochs that re-split the grid
  double t_total = 0;             ///< last volume stored
  double volumes_per_second = 0;  ///< the streaming throughput headline
  std::vector<EpochSim> epochs;   ///< per-volume timeline
};

/// Replays a *sequence* of plans — one per streamed volume, exactly what
/// StreamingStats::plans records — through the streaming recurrence: volume
/// v+1's filter/gather/bp rounds (the Fig. 4a per-round recurrence,
/// carried across volume boundaries) overlap volume v's reduce+store, the
/// depth-1 slab handoff gates the bp thread one volume ahead of the reduce
/// thread, and a grid change between epochs charges SimConfig::replan_s
/// plus a fresh reduce cold-call penalty. All plans must share one rank
/// count (they run in one world). Predicts streaming volumes/sec at scales
/// one machine cannot execute.
StreamSimResult simulate_stream(std::span<const DecompositionPlan> plans,
                                const SimConfig& config = {});

/// Queue-driven service entry over simulate_stream: given the plan of every
/// queued job in dispatch order, returns the predicted completion time of
/// each job in virtual seconds from "the stream starts now" — i.e.
/// simulate_stream(plans).epochs[i].done for every i. The service layer
/// (service::ReconService) republishes these as per-job predicted
/// completions whenever the queue changes; an empty queue predicts nothing.
std::vector<double> predict_queue_completion(
    std::span<const DecompositionPlan> plans, const SimConfig& config = {});

/// Virtual-time phases of one distributed iterative job
/// (iterative::run_iterative) on the plan's rank grid.
struct IterSimResult {
  perfmodel::GridShape grid;
  double t_setup = 0;      ///< shard load + normalization all-reduces
  double t_iteration = 0;  ///< one full iteration (all subset sweeps)
  double t_total = 0;      ///< startup + setup + iterations + store
};

/// Replays the iterate-loop recurrence of iterative::run_iterative in
/// virtual time: per iteration, each of `subsets` sweeps forward-projects
/// and back-projects the rank's view share and all-reduces the replicated
/// volume (reduce + bcast over MicroBench::th_reduce; free at one rank);
/// setup adds the shard load and the per-subset normalization all-reduces,
/// and rank 0's serial slice store closes the job. The workload is
/// compute-dominated by the scalar projector kernels, so the recurrence is
/// a phase sum, not a per-round pipeline.
IterSimResult simulate_iterative(const DecompositionPlan& plan,
                                 int iterations, int subsets,
                                 const SimConfig& config = {});

/// One entry of a mixed FDK + iterative dispatch queue.
struct QueuedJob {
  DecompositionPlan plan;  ///< the job's resolved decomposition
  bool iterative = false;  ///< false = FDK (streams with its neighbours)
  int iterations = 0;      ///< kIterative only
  int subsets = 1;         ///< kIterative only (1 for SART/MLEM)
};

/// Mixed-queue completion prediction: contiguous runs of FDK jobs stream
/// through simulate_stream (overlapping epochs, exactly like the service's
/// batched dispatch), while each iterative job runs serially through
/// simulate_iterative — matching ReconService's one-at-a-time iterative
/// dispatch. Returned times are virtual seconds from "the queue starts
/// now", one per job in order. An all-FDK queue predicts exactly what the
/// plan-span overload predicts.
std::vector<double> predict_queue_completion(std::span<const QueuedJob> jobs,
                                             const SimConfig& config = {});

}  // namespace ifdk::cluster
