#include "cluster/platforms.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace ifdk::platforms {

AwsEstimate estimate_aws(const Problem& problem, int gpus,
                         const AwsConfig& config) {
  IFDK_REQUIRE(gpus % config.gpus_per_instance == 0,
               "GPU count must fill whole instances");
  cluster::SimConfig sim_cfg;
  sim_cfg.mb.gpus_per_node = config.gpus_per_instance;
  // Everything that crosses the 10 Gbps NIC slows to it: AllGather rings,
  // the row Reduce, and the object-store I/O standing in for the PFS.
  sim_cfg.allgather_bandwidth = config.network_bytes_per_s;
  sim_cfg.mb.th_reduce = config.network_bytes_per_s;
  sim_cfg.mb.bw_load = config.network_bytes_per_s *
                       static_cast<double>(gpus / config.gpus_per_instance);
  sim_cfg.mb.bw_store = sim_cfg.mb.bw_load;

  AwsEstimate out;
  out.sim = cluster::simulate(problem, gpus, sim_cfg);
  out.instances = gpus / config.gpus_per_instance;
  out.runtime_s = out.sim.t_runtime;
  // Per-second billing (Section 6.2.1).
  out.cost_usd = out.runtime_s / 3600.0 * config.hourly_rate_usd *
                 static_cast<double>(out.instances);
  return out;
}

cluster::SimResult estimate_dgx2(const Problem& problem,
                                 const Dgx2Config& config) {
  cluster::SimConfig sim_cfg;
  sim_cfg.mb.gpus_per_node = config.gpus;  // one giant node
  sim_cfg.mb.pcie_per_node = config.gpus;  // per-GPU NVLink host links
  sim_cfg.mb.bw_pcie = config.host_link_bytes_per_s;
  sim_cfg.allgather_bandwidth = config.nvswitch_bytes_per_s;
  sim_cfg.mb.th_reduce = config.nvswitch_bytes_per_s;
  sim_cfg.mb.bw_load = config.nvme_bytes_per_s;
  sim_cfg.mb.bw_store = config.nvme_bytes_per_s;
  // No PCIe-switch sharing: D2H drains at the NVLink rate.
  sim_cfg.d2h_efficiency = 0.8;
  // Single-box MPI: no cold-start penalty over a fabric.
  sim_cfg.reduce_first_call_penalty_s = 0.2;

  // A 16-GPU box often has fewer GPUs than the R the memory constraint
  // demands (4K needs R=32 with 8 GB sub-volumes): each GPU then owns
  // several slab pairs and processes them in sequential passes, multiplying
  // the compute and D2H phases but not the store.
  const int rows_needed = perfmodel::select_rows(problem, sim_cfg.mb);
  const int passes =
      std::max(1, (rows_needed + config.gpus - 1) / config.gpus);
  cluster::SimResult sim = cluster::simulate(
      problem, std::max(rows_needed, config.gpus), sim_cfg);
  if (passes > 1) {
    sim.t_compute *= passes;
    sim.t_d2h *= passes;
    sim.t_runtime = sim.t_compute + sim.t_d2h + sim.t_reduce + sim.t_store;
    sim.gups = gups(problem.out.nx, problem.out.ny, problem.out.nz,
                    problem.in.np, sim.t_runtime);
    sim.gups_compute = gups(problem.out.nx, problem.out.ny, problem.out.nz,
                            problem.in.np, sim.t_runtime - sim.t_store);
  }
  return sim;
}

}  // namespace ifdk::platforms
