// Platform projections of paper Section 6.2: running iFDK off the
// supercomputer.
//
//   * AWS HPC (Section 6.2.1): p3.8xlarge instances (4 V100s each, 10 Gbps
//     network), on-demand $12.24/h billed by the second — the paper
//     estimates a 4K reconstruction for "less than $100" on 256 instances.
//   * Nvidia DGX-2 (Section 6.2.2): one box with 16 V100s, NVSwitch
//     interconnect and local NVMe — the paper projects 4K "within a minute".
//
// Both are derived from the same cluster simulator with platform-adjusted
// micro-benchmark constants (slower network on AWS, faster interconnect and
// storage on the DGX-2).
#pragma once

#include "cluster/simulator.h"
#include "geometry/types.h"

namespace ifdk::platforms {

struct AwsEstimate {
  int instances = 0;     ///< p3.8xlarge count (4 GPUs each)
  double runtime_s = 0;  ///< simulated end-to-end reconstruction time
  double cost_usd = 0;   ///< runtime * instances * hourly rate (per-second)
  cluster::SimResult sim;
};

struct AwsConfig {
  double hourly_rate_usd = 12.24;  ///< on-demand, March 2019 us-east-2
  int gpus_per_instance = 4;
  /// 10 Gbps instance networking shared by everything; the paper "accounts
  /// for the low-performance network by assuming factors of slowdown" —
  /// collectives and PFS traffic run at this rate.
  double network_bytes_per_s = 10e9 / 8.0;
};

/// Projects the paper's AWS scenario for `problem` on `gpus` V100s.
AwsEstimate estimate_aws(const Problem& problem, int gpus,
                         const AwsConfig& config = {});

struct Dgx2Config {
  int gpus = 16;
  /// NVSwitch: ~2.4 TB/s bisection; per-GPU link ~ 150 GB/s. Collectives are
  /// effectively memory-speed compared to InfiniBand.
  double nvswitch_bytes_per_s = 150e9;
  /// Local NVMe array (30 TB): ~25 GB/s writes.
  double nvme_bytes_per_s = 25e9;
  /// PCIe is replaced by NVLink to the host on DGX-2.
  double host_link_bytes_per_s = 80e9;
};

/// Projects the DGX-2 scenario (single box, 16 GPUs).
cluster::SimResult estimate_dgx2(const Problem& problem,
                                 const Dgx2Config& config = {});

}  // namespace ifdk::platforms
