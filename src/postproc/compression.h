// Volume compression (paper Section 8, future work: "we intend to
// investigate compression ... of the high-resolution volumes").
//
// High-resolution CT volumes are huge (256 GB at 4K, 2 TB at 8K) but highly
// compressible: most voxels are air, and tissue/material plateaus are long
// runs after quantization. Two codecs live here:
//
//   * The LOSSY store codec:
//       float32  --(linear quantization, configurable bits)-->  uint16
//                --(run-length encoding of equal words)------->  byte stream
//     a lossy-then-lossless stage pair whose error is bounded by half a
//     quantization step. Compression ratio and PSNR are first-class outputs
//     so the store-stage savings can be fed back into the performance model
//     (a compressed 8K store at ratio r cuts Tstore by r).
//
//   * The LOSSLESS wire codec (encode_frame / decode_frame): byte-plane
//     shuffle + per-plane RLE with a guaranteed raw-frame fallback, so the
//     encoded payload is never larger than the raw floats (ratio >= 1 by
//     construction). Frames are self-describing — a fixed header carries the
//     mode, word count, payload length, and an FNV-1a checksum — so framed
//     contributions can be concatenated back-to-back (the tree-ireduce relay
//     path) and parsed without out-of-band length information. Round trips
//     are bitwise exact, NaN/Inf payloads included (the codec never
//     interprets the bits as floats).
//
// Corrupt input of either codec throws ifdk::CompressionError naming the
// offending byte offset; decoders validate before touching payload bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/volume.h"

namespace ifdk::postproc {

struct CompressedVolume {
  std::size_t nx = 0, ny = 0, nz = 0;
  VolumeLayout layout = VolumeLayout::kXMajor;
  float min_value = 0;   ///< quantization range
  float max_value = 0;
  int bits = 16;         ///< quantization depth (<= 16)
  std::vector<std::uint8_t> payload;  ///< RLE stream

  /// Size of the RLE payload in bytes.
  std::size_t compressed_bytes() const { return payload.size(); }
  /// Size of the raw float volume the header claims: nx*ny*nz*4. The
  /// product is NOT overflow-checked here — decompress() and
  /// deserialize_volume() validate untrusted headers before using it.
  std::size_t original_bytes() const { return nx * ny * nz * sizeof(float); }
  /// original_bytes / compressed_bytes (0 for an empty payload).
  double ratio() const {
    return payload.empty()
               ? 0.0
               : static_cast<double>(original_bytes()) /
                     static_cast<double>(compressed_bytes());
  }
};

/// Compresses a volume with `bits`-deep quantization (8..16).
CompressedVolume compress(const Volume& volume, int bits = 16);

/// Reconstructs the volume; values differ from the original by at most half
/// a quantization step of the stored range. The header is treated as
/// untrusted: the nx*ny*nz product is checked against overflow and the RLE
/// stream's decoded word count must equal it exactly (both validated BEFORE
/// the volume is allocated); violations throw CompressionError naming the
/// offending offset.
Volume decompress(const CompressedVolume& compressed);

/// Peak signal-to-noise ratio between two volumes in dB (peak = max |a|).
double psnr_db(const Volume& a, const Volume& b);

// -- lossless wire frames ----------------------------------------------------

/// Bytes of the self-describing frame header: magic u32, mode u8 (0 = raw,
/// 1 = byte-plane shuffle + RLE), 3 reserved bytes, word count u32, payload
/// length u32, FNV-1a payload checksum u32. All fields little-endian.
inline constexpr std::size_t kFrameHeaderBytes = 20;

/// Losslessly encodes `count` floats into one self-describing frame.
/// The payload is the smaller of {byte-plane shuffle + RLE, raw bytes}, so
/// frame.size() <= kFrameHeaderBytes + 4*count always (ratio >= 1 by
/// construction, up to the constant header). Bitwise exact round trip for
/// every bit pattern, NaN/Inf included; count == 0 yields a header-only
/// frame. `count` must fit the header's u32 word-count field.
std::vector<std::uint8_t> encode_frame(const float* data, std::size_t count);

/// Decodes one frame starting at `data` and writes exactly `expected_count`
/// floats to `out`; returns the number of frame bytes consumed (header +
/// payload), so concatenated frames can be parsed sequentially. Validates
/// magic, mode, word count (must equal `expected_count`), payload length
/// (against `bytes_available` — a length-lying header cannot cause an
/// out-of-bounds read), and the checksum, in that order, before decoding;
/// any violation throws CompressionError naming the offending byte offset
/// relative to the frame start.
std::size_t decode_frame(const std::uint8_t* data, std::size_t bytes_available,
                         float* out, std::size_t expected_count);

// -- serialized store objects ------------------------------------------------

/// Serializes a CompressedVolume into one self-contained byte object (the
/// compressed PFS store format): a fixed header (magic, dims, layout,
/// quantization range/depth, payload length, FNV-1a payload checksum)
/// followed by the RLE payload.
std::vector<std::uint8_t> serialize_volume(const CompressedVolume& volume);

/// Parses a serialized CompressedVolume. The input is untrusted: magic,
/// header completeness, payload length vs `bytes`, and the checksum are all
/// validated (CompressionError naming the byte offset on violation). The
/// returned header still carries untrusted dimensions — decompress()
/// re-validates them against the decoded word count.
CompressedVolume deserialize_volume(const std::uint8_t* data,
                                    std::size_t bytes);

}  // namespace ifdk::postproc
