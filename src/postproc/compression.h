// Volume compression (paper Section 8, future work: "we intend to
// investigate compression ... of the high-resolution volumes").
//
// High-resolution CT volumes are huge (256 GB at 4K, 2 TB at 8K) but highly
// compressible: most voxels are air, and tissue/material plateaus are long
// runs after quantization. The codec here is
//
//   float32  --(linear quantization, configurable bits)-->  uint16
//            --(run-length encoding of equal words)------->  byte stream
//
// i.e. a lossy-then-lossless stage pair whose error is bounded by half a
// quantization step. Compression ratio and PSNR are first-class outputs so
// the store-stage savings can be fed back into the performance model (a
// compressed 8K store at ratio r cuts Tstore by r).
#pragma once

#include <cstdint>
#include <vector>

#include "common/volume.h"

namespace ifdk::postproc {

struct CompressedVolume {
  std::size_t nx = 0, ny = 0, nz = 0;
  VolumeLayout layout = VolumeLayout::kXMajor;
  float min_value = 0;   ///< quantization range
  float max_value = 0;
  int bits = 16;         ///< quantization depth (<= 16)
  std::vector<std::uint8_t> payload;  ///< RLE stream

  std::size_t compressed_bytes() const { return payload.size(); }
  std::size_t original_bytes() const { return nx * ny * nz * sizeof(float); }
  double ratio() const {
    return payload.empty()
               ? 0.0
               : static_cast<double>(original_bytes()) /
                     static_cast<double>(compressed_bytes());
  }
};

/// Compresses a volume with `bits`-deep quantization (8..16).
CompressedVolume compress(const Volume& volume, int bits = 16);

/// Reconstructs the volume; values differ from the original by at most half
/// a quantization step of the stored range.
Volume decompress(const CompressedVolume& compressed);

/// Peak signal-to-noise ratio between two volumes in dB (peak = max |a|).
double psnr_db(const Volume& a, const Volume& b);

}  // namespace ifdk::postproc
