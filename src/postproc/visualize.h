// Volume visualization (paper Section 8, future work: "... and
// visualization of the high-resolution volumes").
//
// Three renderers radiologists and NDT inspectors actually use:
//   * MIP  — maximum intensity projection along a principal axis (the
//            default vessel/defect view),
//   * average (thick-slab) projection — synthetic radiograph,
//   * orthogonal tri-planar slices — the standard viewer layout.
#pragma once

#include <cstddef>

#include "common/image.h"
#include "common/volume.h"

namespace ifdk::postproc {

enum class Axis { kX, kY, kZ };

/// Maximum intensity projection along `axis`; the result spans the two
/// remaining axes (X->(y,z), Y->(x,z), Z->(x,y)). Volume must be kXMajor.
Image2D mip(const Volume& volume, Axis axis);

/// Mean projection along `axis` (a synthetic radiograph).
Image2D average_projection(const Volume& volume, Axis axis);

/// The three central orthogonal slices: axial (XY at z-center), coronal
/// (XZ at y-center), sagittal (YZ at x-center).
struct TriPlanar {
  Image2D axial;
  Image2D coronal;
  Image2D sagittal;
};
/// Renders the three central slices of a kXMajor volume.
TriPlanar tri_planar(const Volume& volume);

}  // namespace ifdk::postproc
