#include "postproc/compression.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace ifdk::postproc {

namespace {

/// RLE word stream: records of (run_length u16, value u16), both
/// little-endian. Runs are capped at 65535 and split when longer.
void append_run(std::vector<std::uint8_t>& out, std::uint16_t value,
                std::size_t length) {
  while (length > 0) {
    const std::uint16_t run =
        static_cast<std::uint16_t>(std::min<std::size_t>(length, 65535));
    out.push_back(static_cast<std::uint8_t>(run & 0xff));
    out.push_back(static_cast<std::uint8_t>(run >> 8));
    out.push_back(static_cast<std::uint8_t>(value & 0xff));
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    length -= run;
  }
}

}  // namespace

CompressedVolume compress(const Volume& volume, int bits) {
  IFDK_REQUIRE(bits >= 8 && bits <= 16, "quantization depth must be 8..16");
  CompressedVolume out;
  out.nx = volume.nx();
  out.ny = volume.ny();
  out.nz = volume.nz();
  out.layout = volume.layout();
  out.bits = bits;

  const float* data = volume.data();
  const std::size_t n = volume.voxels();
  IFDK_REQUIRE(n > 0, "cannot compress an empty volume");

  float lo = data[0], hi = data[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  out.min_value = lo;
  out.max_value = hi;
  const float range = hi - lo;
  const auto levels =
      static_cast<std::uint32_t>((1u << bits) - 1);
  const float scale = range > 0 ? static_cast<float>(levels) / range : 0.0f;

  // Quantize + RLE in one pass.
  out.payload.reserve(n / 8);  // heuristic
  std::uint16_t current = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto q = static_cast<std::uint16_t>(
        std::lround((data[i] - lo) * scale));
    if (run > 0 && q == current) {
      ++run;
    } else {
      if (run > 0) append_run(out.payload, current, run);
      current = q;
      run = 1;
    }
  }
  if (run > 0) append_run(out.payload, current, run);
  return out;
}

Volume decompress(const CompressedVolume& compressed) {
  Volume volume(compressed.nx, compressed.ny, compressed.nz,
                compressed.layout, /*zero_fill=*/false);
  const std::size_t n = volume.voxels();
  const auto levels =
      static_cast<std::uint32_t>((1u << compressed.bits) - 1);
  const float range = compressed.max_value - compressed.min_value;
  const float scale = levels > 0 ? range / static_cast<float>(levels) : 0.0f;

  float* data = volume.data();
  std::size_t written = 0;
  const auto& p = compressed.payload;
  IFDK_REQUIRE(p.size() % 4 == 0, "corrupt RLE stream (truncated record)");
  for (std::size_t off = 0; off < p.size(); off += 4) {
    const std::size_t run = static_cast<std::size_t>(p[off]) |
                            (static_cast<std::size_t>(p[off + 1]) << 8);
    const std::uint16_t q = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[off + 2]) |
        (static_cast<std::uint16_t>(p[off + 3]) << 8));
    IFDK_REQUIRE(written + run <= n, "corrupt RLE stream (overflows volume)");
    const float value = compressed.min_value + scale * static_cast<float>(q);
    std::fill(data + written, data + written + run, value);
    written += run;
  }
  IFDK_REQUIRE(written == n, "corrupt RLE stream (short of volume size)");
  return volume;
}

double psnr_db(const Volume& a, const Volume& b) {
  IFDK_REQUIRE(a.voxels() == b.voxels(), "volume sizes differ");
  double peak = 0, mse = 0;
  for (std::size_t i = 0; i < a.voxels(); ++i) {
    peak = std::max(peak, std::abs(static_cast<double>(a.data()[i])));
    const double d = a.data()[i] - b.data()[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.voxels());
  if (mse == 0) return std::numeric_limits<double>::infinity();
  IFDK_REQUIRE(peak > 0, "PSNR undefined for an all-zero reference");
  return 10.0 * std::log10(peak * peak / mse);
}

}  // namespace ifdk::postproc
