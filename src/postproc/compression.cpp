#include "postproc/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "common/error.h"

namespace ifdk::postproc {

namespace {

/// RLE word stream: records of (run_length u16, value u16), both
/// little-endian. Runs are capped at 65535 and split when longer.
void append_run(std::vector<std::uint8_t>& out, std::uint16_t value,
                std::size_t length) {
  while (length > 0) {
    const std::uint16_t run =
        static_cast<std::uint16_t>(std::min<std::size_t>(length, 65535));
    out.push_back(static_cast<std::uint8_t>(run & 0xff));
    out.push_back(static_cast<std::uint8_t>(run >> 8));
    out.push_back(static_cast<std::uint8_t>(value & 0xff));
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    length -= run;
  }
}

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
  throw CompressionError(what + " at offset " + std::to_string(offset));
}

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t bytes) {
  std::uint32_t hash = 2166136261u;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u32_at(std::vector<std::uint8_t>& out, std::size_t pos,
                std::uint32_t v) {
  out[pos] = static_cast<std::uint8_t>(v & 0xff);
  out[pos + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  out[pos + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  out[pos + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// "FWF1" little-endian: iFDK wire frame, version 1.
constexpr std::uint32_t kFrameMagic = 0x31465746u;
/// "CVS1" little-endian: compressed volume store object, version 1.
constexpr std::uint32_t kVolumeMagic = 0x31535643u;
/// Serialized CompressedVolume header: magic u32, nx/ny/nz u32, layout u8,
/// bits u8, 2 reserved bytes, min/max f32 bit patterns, payload length u32,
/// FNV-1a payload checksum u32.
constexpr std::size_t kVolumeHeaderBytes = 36;

/// Overflow-checked product; the failure message names the header field so
/// a lying store object is attributable.
std::size_t checked_mul(std::size_t a, std::size_t b, const char* what) {
  if (b != 0 && a > std::numeric_limits<std::size_t>::max() / b) {
    throw CompressionError(std::string("compressed volume header overflow: ") +
                           what);
  }
  return a * b;
}

}  // namespace

CompressedVolume compress(const Volume& volume, int bits) {
  IFDK_REQUIRE(bits >= 8 && bits <= 16, "quantization depth must be 8..16");
  CompressedVolume out;
  out.nx = volume.nx();
  out.ny = volume.ny();
  out.nz = volume.nz();
  out.layout = volume.layout();
  out.bits = bits;

  const float* data = volume.data();
  const std::size_t n = volume.voxels();
  IFDK_REQUIRE(n > 0, "cannot compress an empty volume");

  float lo = data[0], hi = data[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  out.min_value = lo;
  out.max_value = hi;
  const float range = hi - lo;
  const auto levels =
      static_cast<std::uint32_t>((1u << bits) - 1);
  const float scale = range > 0 ? static_cast<float>(levels) / range : 0.0f;

  // Quantize + RLE in one pass.
  out.payload.reserve(n / 8);  // heuristic
  std::uint16_t current = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto q = static_cast<std::uint16_t>(
        std::lround((data[i] - lo) * scale));
    if (run > 0 && q == current) {
      ++run;
    } else {
      if (run > 0) append_run(out.payload, current, run);
      current = q;
      run = 1;
    }
  }
  if (run > 0) append_run(out.payload, current, run);
  return out;
}

Volume decompress(const CompressedVolume& compressed) {
  // The header is untrusted (it may come off the PFS via deserialize_volume):
  // validate everything BEFORE allocating nx*ny*nz floats, so a lying header
  // can neither overflow the size computation nor trigger a huge allocation
  // backed by a tiny payload.
  if (compressed.bits < 1 || compressed.bits > 16) {
    throw CompressionError("compressed volume header: quantization depth " +
                           std::to_string(compressed.bits) +
                           " outside 1..16");
  }
  const std::size_t n = checked_mul(
      checked_mul(compressed.nx, compressed.ny, "nx*ny"), compressed.nz,
      "nx*ny*nz");
  checked_mul(n, sizeof(float), "nx*ny*nz*sizeof(float)");
  if (n == 0) {
    throw CompressionError("compressed volume header: empty volume (nx=" +
                           std::to_string(compressed.nx) +
                           " ny=" + std::to_string(compressed.ny) +
                           " nz=" + std::to_string(compressed.nz) + ")");
  }

  const auto& p = compressed.payload;
  if (p.size() % 4 != 0) {
    fail("corrupt RLE stream: truncated record", p.size() - p.size() % 4);
  }
  std::size_t total = 0;
  for (std::size_t off = 0; off < p.size(); off += 4) {
    const std::size_t run = static_cast<std::size_t>(p[off]) |
                            (static_cast<std::size_t>(p[off + 1]) << 8);
    if (total + run > n) {
      fail("corrupt RLE stream: decoded words exceed header voxel count " +
               std::to_string(n),
           off);
    }
    total += run;
  }
  if (total != n) {
    throw CompressionError(
        "corrupt RLE stream: decodes " + std::to_string(total) +
        " words but header claims " + std::to_string(n) + " voxels");
  }

  Volume volume(compressed.nx, compressed.ny, compressed.nz,
                compressed.layout, /*zero_fill=*/false);
  const auto levels = static_cast<std::uint32_t>(
      (1u << static_cast<unsigned>(compressed.bits)) - 1);
  const float range = compressed.max_value - compressed.min_value;
  const float scale = levels > 0 ? range / static_cast<float>(levels) : 0.0f;

  float* data = volume.data();
  std::size_t written = 0;
  for (std::size_t off = 0; off < p.size(); off += 4) {
    const std::size_t run = static_cast<std::size_t>(p[off]) |
                            (static_cast<std::size_t>(p[off + 1]) << 8);
    const std::uint16_t q = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[off + 2]) |
        (static_cast<std::uint16_t>(p[off + 3]) << 8));
    const float value = compressed.min_value + scale * static_cast<float>(q);
    std::fill(data + written, data + written + run, value);
    written += run;
  }
  return volume;
}

double psnr_db(const Volume& a, const Volume& b) {
  IFDK_REQUIRE(a.voxels() == b.voxels(), "volume sizes differ");
  double peak = 0, mse = 0;
  for (std::size_t i = 0; i < a.voxels(); ++i) {
    peak = std::max(peak, std::abs(static_cast<double>(a.data()[i])));
    const double d = a.data()[i] - b.data()[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.voxels());
  if (mse == 0) return std::numeric_limits<double>::infinity();
  IFDK_REQUIRE(peak > 0, "PSNR undefined for an all-zero reference");
  return 10.0 * std::log10(peak * peak / mse);
}

// -- lossless wire frames ----------------------------------------------------

std::vector<std::uint8_t> encode_frame(const float* data, std::size_t count) {
  IFDK_REQUIRE(count <= 0xffffffffu,
               "wire frame word count exceeds the u32 header field");
  const std::size_t raw_bytes = count * sizeof(float);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data);

  // Byte-plane shuffle + per-plane RLE of (run u16, value u8) records, each
  // plane prefixed with its encoded length. Floats that are equal or share
  // exponent/sign structure produce long runs in the high planes even when
  // mantissa planes stay noisy.
  std::vector<std::uint8_t> encoded;
  bool use_rle = count > 0;
  for (std::size_t plane = 0; plane < sizeof(float) && use_rle; ++plane) {
    const std::size_t size_pos = encoded.size();
    encoded.insert(encoded.end(), 4, 0);  // length prefix, patched below
    const std::size_t plane_start = encoded.size();
    auto flush = [&encoded](std::uint8_t value, std::size_t length) {
      while (length > 0) {
        const std::uint16_t run =
            static_cast<std::uint16_t>(std::min<std::size_t>(length, 65535));
        encoded.push_back(static_cast<std::uint8_t>(run & 0xff));
        encoded.push_back(static_cast<std::uint8_t>(run >> 8));
        encoded.push_back(value);
        length -= run;
      }
    };
    std::uint8_t current = bytes[plane];
    std::size_t run = 1;
    for (std::size_t i = 1; i < count; ++i) {
      const std::uint8_t b = bytes[i * sizeof(float) + plane];
      if (b == current) {
        ++run;
      } else {
        flush(current, run);
        current = b;
        run = 1;
      }
    }
    flush(current, run);
    put_u32_at(encoded, size_pos,
               static_cast<std::uint32_t>(encoded.size() - plane_start));
    if (encoded.size() >= raw_bytes) use_rle = false;  // raw can't lose
  }

  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes +
                (use_rle ? encoded.size() : raw_bytes));
  put_u32(frame, kFrameMagic);
  frame.push_back(use_rle ? 1 : 0);  // mode
  frame.insert(frame.end(), 3, 0);   // reserved
  put_u32(frame, static_cast<std::uint32_t>(count));
  if (use_rle) {
    put_u32(frame, static_cast<std::uint32_t>(encoded.size()));
    put_u32(frame, fnv1a(encoded.data(), encoded.size()));
    frame.insert(frame.end(), encoded.begin(), encoded.end());
  } else {
    put_u32(frame, static_cast<std::uint32_t>(raw_bytes));
    put_u32(frame, fnv1a(bytes, raw_bytes));
    frame.insert(frame.end(), bytes, bytes + raw_bytes);
  }
  return frame;
}

std::size_t decode_frame(const std::uint8_t* data, std::size_t bytes_available,
                         float* out, std::size_t expected_count) {
  if (bytes_available < kFrameHeaderBytes) {
    fail("wire frame: truncated header, " + std::to_string(bytes_available) +
             " of " + std::to_string(kFrameHeaderBytes) + " bytes",
         bytes_available);
  }
  if (get_u32(data) != kFrameMagic) fail("wire frame: bad magic", 0);
  const std::uint8_t mode = data[4];
  if (mode > 1) {
    fail("wire frame: unknown mode " + std::to_string(mode), 4);
  }
  for (std::size_t i = 5; i < 8; ++i) {
    if (data[i] != 0) fail("wire frame: nonzero reserved byte", i);
  }
  const std::size_t count = get_u32(data + 8);
  if (count != expected_count) {
    fail("wire frame: word count " + std::to_string(count) +
             " != expected " + std::to_string(expected_count),
         8);
  }
  const std::size_t payload_bytes = get_u32(data + 12);
  if (payload_bytes > bytes_available - kFrameHeaderBytes) {
    fail("wire frame: payload length " + std::to_string(payload_bytes) +
             " exceeds the " +
             std::to_string(bytes_available - kFrameHeaderBytes) +
             " bytes available",
         12);
  }
  const std::size_t raw_bytes = count * sizeof(float);
  if (mode == 0 && payload_bytes != raw_bytes) {
    fail("wire frame: raw payload length " + std::to_string(payload_bytes) +
             " != " + std::to_string(raw_bytes),
         12);
  }
  if (mode == 1 && (count == 0 || payload_bytes >= raw_bytes)) {
    fail("wire frame: RLE payload length " + std::to_string(payload_bytes) +
             " not smaller than raw " + std::to_string(raw_bytes),
         12);
  }
  const std::uint8_t* payload = data + kFrameHeaderBytes;
  const std::uint32_t checksum = get_u32(data + 16);
  if (fnv1a(payload, payload_bytes) != checksum) {
    fail("wire frame: payload checksum mismatch", 16);
  }

  if (mode == 0) {
    std::memcpy(out, payload, raw_bytes);
    return kFrameHeaderBytes + payload_bytes;
  }

  // Mode 1: four length-prefixed byte planes. The checksum already pinned
  // the payload bits, but parse defensively anyway — every read and write is
  // bounds-checked so even a checksum collision cannot become UB.
  auto* out_bytes = reinterpret_cast<std::uint8_t*>(out);
  std::size_t off = 0;  // relative to payload; errors report absolute offsets
  for (std::size_t plane = 0; plane < sizeof(float); ++plane) {
    if (off + 4 > payload_bytes) {
      fail("wire frame: truncated plane " + std::to_string(plane) + " prefix",
           kFrameHeaderBytes + off);
    }
    const std::size_t plane_bytes = get_u32(payload + off);
    off += 4;
    if (plane_bytes > payload_bytes - off) {
      fail("wire frame: plane " + std::to_string(plane) + " length " +
               std::to_string(plane_bytes) + " overruns payload",
           kFrameHeaderBytes + off - 4);
    }
    if (plane_bytes % 3 != 0) {
      fail("wire frame: plane " + std::to_string(plane) +
               " has a truncated RLE record",
           kFrameHeaderBytes + off + plane_bytes - plane_bytes % 3);
    }
    std::size_t decoded = 0;
    const std::size_t plane_end = off + plane_bytes;
    while (off < plane_end) {
      const std::size_t run = static_cast<std::size_t>(payload[off]) |
                              (static_cast<std::size_t>(payload[off + 1]) << 8);
      const std::uint8_t value = payload[off + 2];
      if (decoded + run > count) {
        fail("wire frame: plane " + std::to_string(plane) +
                 " decodes past word count " + std::to_string(count),
             kFrameHeaderBytes + off);
      }
      for (std::size_t i = 0; i < run; ++i) {
        out_bytes[(decoded + i) * sizeof(float) + plane] = value;
      }
      decoded += run;
      off += 3;
    }
    if (decoded != count) {
      fail("wire frame: plane " + std::to_string(plane) + " decodes " +
               std::to_string(decoded) + " of " + std::to_string(count) +
               " words",
           kFrameHeaderBytes + off);
    }
  }
  if (off != payload_bytes) {
    fail("wire frame: " + std::to_string(payload_bytes - off) +
             " trailing payload bytes",
         kFrameHeaderBytes + off);
  }
  return kFrameHeaderBytes + payload_bytes;
}

// -- serialized store objects ------------------------------------------------

std::vector<std::uint8_t> serialize_volume(const CompressedVolume& volume) {
  IFDK_REQUIRE(volume.nx <= 0xffffffffu && volume.ny <= 0xffffffffu &&
                   volume.nz <= 0xffffffffu,
               "volume dimensions exceed the u32 store header fields");
  IFDK_REQUIRE(volume.payload.size() <= 0xffffffffu,
               "compressed payload exceeds the u32 store header field");
  std::vector<std::uint8_t> out;
  out.reserve(kVolumeHeaderBytes + volume.payload.size());
  put_u32(out, kVolumeMagic);
  put_u32(out, static_cast<std::uint32_t>(volume.nx));
  put_u32(out, static_cast<std::uint32_t>(volume.ny));
  put_u32(out, static_cast<std::uint32_t>(volume.nz));
  out.push_back(static_cast<std::uint8_t>(volume.layout));
  out.push_back(static_cast<std::uint8_t>(volume.bits));
  out.insert(out.end(), 2, 0);  // reserved
  std::uint32_t min_bits = 0, max_bits = 0;
  std::memcpy(&min_bits, &volume.min_value, sizeof(min_bits));
  std::memcpy(&max_bits, &volume.max_value, sizeof(max_bits));
  put_u32(out, min_bits);
  put_u32(out, max_bits);
  put_u32(out, static_cast<std::uint32_t>(volume.payload.size()));
  put_u32(out, fnv1a(volume.payload.data(), volume.payload.size()));
  out.insert(out.end(), volume.payload.begin(), volume.payload.end());
  return out;
}

CompressedVolume deserialize_volume(const std::uint8_t* data,
                                    std::size_t bytes) {
  if (bytes < kVolumeHeaderBytes) {
    fail("compressed volume: truncated header, " + std::to_string(bytes) +
             " of " + std::to_string(kVolumeHeaderBytes) + " bytes",
         bytes);
  }
  if (get_u32(data) != kVolumeMagic) fail("compressed volume: bad magic", 0);
  CompressedVolume out;
  out.nx = get_u32(data + 4);
  out.ny = get_u32(data + 8);
  out.nz = get_u32(data + 12);
  const std::uint8_t layout = data[16];
  if (layout > static_cast<std::uint8_t>(VolumeLayout::kZMajor)) {
    fail("compressed volume: unknown layout " + std::to_string(layout), 16);
  }
  out.layout = static_cast<VolumeLayout>(layout);
  out.bits = data[17];
  if (out.bits < 1 || out.bits > 16) {
    fail("compressed volume: quantization depth " + std::to_string(out.bits) +
             " outside 1..16",
         17);
  }
  for (std::size_t i = 18; i < 20; ++i) {
    if (data[i] != 0) fail("compressed volume: nonzero reserved byte", i);
  }
  std::uint32_t min_bits = get_u32(data + 20);
  std::uint32_t max_bits = get_u32(data + 24);
  std::memcpy(&out.min_value, &min_bits, sizeof(out.min_value));
  std::memcpy(&out.max_value, &max_bits, sizeof(out.max_value));
  const std::size_t payload_bytes = get_u32(data + 28);
  if (payload_bytes != bytes - kVolumeHeaderBytes) {
    fail("compressed volume: payload length " + std::to_string(payload_bytes) +
             " != " + std::to_string(bytes - kVolumeHeaderBytes) +
             " bytes present",
         28);
  }
  const std::uint8_t* payload = data + kVolumeHeaderBytes;
  if (fnv1a(payload, payload_bytes) != get_u32(data + 32)) {
    fail("compressed volume: payload checksum mismatch", 32);
  }
  out.payload.assign(payload, payload + payload_bytes);
  return out;
}

}  // namespace ifdk::postproc
