#include "postproc/visualize.h"

#include <algorithm>

#include "common/error.h"

namespace ifdk::postproc {

namespace {

template <typename Accumulate>
Image2D project_axis(const Volume& v, Axis axis, Accumulate&& acc,
                     bool average) {
  IFDK_REQUIRE(v.layout() == VolumeLayout::kXMajor,
               "visualization expects the X-major layout");
  std::size_t w = 0, h = 0, depth = 0;
  switch (axis) {
    case Axis::kX: w = v.ny(); h = v.nz(); depth = v.nx(); break;
    case Axis::kY: w = v.nx(); h = v.nz(); depth = v.ny(); break;
    case Axis::kZ: w = v.nx(); h = v.ny(); depth = v.nz(); break;
  }
  Image2D img(w, h, /*zero_fill=*/true);
  for (std::size_t b = 0; b < h; ++b) {
    for (std::size_t a = 0; a < w; ++a) {
      float result = 0.0f;
      bool first = true;
      for (std::size_t d = 0; d < depth; ++d) {
        float sample = 0;
        switch (axis) {
          case Axis::kX: sample = v.at(d, a, b); break;
          case Axis::kY: sample = v.at(a, d, b); break;
          case Axis::kZ: sample = v.at(a, b, d); break;
        }
        if (first) {
          result = sample;
          first = false;
        } else {
          result = acc(result, sample);
        }
      }
      if (average && depth > 0) result /= static_cast<float>(depth);
      img.at(a, b) = result;
    }
  }
  return img;
}

}  // namespace

Image2D mip(const Volume& volume, Axis axis) {
  return project_axis(volume, axis,
                      [](float a, float b) { return std::max(a, b); },
                      /*average=*/false);
}

Image2D average_projection(const Volume& volume, Axis axis) {
  return project_axis(volume, axis, [](float a, float b) { return a + b; },
                      /*average=*/true);
}

TriPlanar tri_planar(const Volume& volume) {
  IFDK_REQUIRE(volume.layout() == VolumeLayout::kXMajor,
               "visualization expects the X-major layout");
  TriPlanar out;
  out.axial = Image2D(volume.nx(), volume.ny(), false);
  const float* slice = volume.slice(volume.nz() / 2);
  std::copy(slice, slice + out.axial.pixels(), out.axial.data());

  out.coronal = Image2D(volume.nx(), volume.nz(), false);
  const std::size_t jc = volume.ny() / 2;
  for (std::size_t k = 0; k < volume.nz(); ++k) {
    for (std::size_t i = 0; i < volume.nx(); ++i) {
      out.coronal.at(i, k) = volume.at(i, jc, k);
    }
  }

  out.sagittal = Image2D(volume.ny(), volume.nz(), false);
  const std::size_t ic = volume.nx() / 2;
  for (std::size_t k = 0; k < volume.nz(); ++k) {
    for (std::size_t j = 0; j < volume.ny(); ++j) {
      out.sagittal.at(j, k) = volume.at(ic, j, k);
    }
  }
  return out;
}

}  // namespace ifdk::postproc
