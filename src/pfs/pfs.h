// Parallel file system model (the GPFS of the paper's testbed).
//
// Functionally this is a thread-safe in-memory object store with Lustre/GPFS
// style striping metadata; economically it models what iFDK's Eq. (8) and
// Eq. (16) assume: reads and writes are limited by a *shared aggregate*
// bandwidth (28.5 GB/s sequential write on ABCI's GPFS), independent of how
// many ranks participate. estimate_* returns the modeled stage time; the
// IOR-like microbenchmark in bench_microbench sweeps it the way the paper
// runs LLNL IOR.
//
// Projections are objects named by index; volumes are stored as Nz slices of
// Nx*Ny floats each (Section 4.1.3), so the store also captures the paper's
// observation that slice size vs stripe size tuning matters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"

namespace ifdk::pfs {

struct PfsConfig {
  double read_bandwidth_bytes_per_s = 28.5e9;
  double write_bandwidth_bytes_per_s = 28.5e9;
  /// Per-operation latency (metadata + first-byte).
  double latency_s = 0.5e-3;
  /// Stripe layout (for utilization accounting).
  std::uint64_t stripe_bytes = 16ull << 20;
  int num_targets = 64;  ///< number of storage targets ("OSTs")
};

class ParallelFileSystem {
 public:
  /// Validates and adopts the striping/bandwidth configuration.
  explicit ParallelFileSystem(PfsConfig config = {});
  virtual ~ParallelFileSystem() = default;

  // -- functional object store (thread-safe) -------------------------------
  //
  // write_object/read_object are virtual so tests can inject faults (e.g. a
  // read that throws on one distributed rank) without a separate store.

  /// Stores (or overwrites) the whole object atomically; safe to call from
  /// any thread, including pfs::AsyncWriter's background writer.
  virtual void write_object(const std::string& name, const void* data,
                            std::size_t bytes);
  /// Reads the whole object; throws IoError when missing or size mismatches.
  virtual void read_object(const std::string& name, void* data,
                           std::size_t bytes) const;
  /// True when an object of this name is stored.
  bool exists(const std::string& name) const;
  /// Size in bytes of the named object; throws IoError when missing.
  std::size_t object_size(const std::string& name) const;
  /// Removes the object (no-op when absent).
  void remove_object(const std::string& name);
  /// Names of every stored object, sorted.
  std::vector<std::string> list_objects() const;
  /// Sum of all stored payload sizes.
  std::uint64_t total_bytes_stored() const;

  // -- cost model -----------------------------------------------------------

  /// Modeled wall time for `ranks` clients collectively reading
  /// `total_bytes` (shared-bandwidth: time does not improve with more ranks
  /// once the aggregate link saturates).
  double estimate_read_seconds(std::uint64_t total_bytes, int ranks = 1) const;
  /// Modeled wall time for `ranks` clients collectively writing
  /// `total_bytes` against the shared aggregate write bandwidth.
  double estimate_write_seconds(std::uint64_t total_bytes,
                                int ranks = 1) const;

  /// Number of stripes an object of `bytes` spans (ceil) and the fraction of
  /// targets a single such object can keep busy — the file-striping
  /// utilization the paper's Tstore gap analysis points at (§5.3.3).
  std::uint64_t stripes_for(std::uint64_t bytes) const;
  /// Fraction of storage targets one object of `bytes` keeps busy.
  double stripe_utilization(std::uint64_t bytes) const;

  /// The striping/bandwidth configuration this store models.
  const PfsConfig& config() const { return config_; }

 private:
  PfsConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<char>> objects_;
};

}  // namespace ifdk::pfs
