#include "pfs/pfs.h"

#include <algorithm>
#include <cstring>

#include "common/math_util.h"

namespace ifdk::pfs {

ParallelFileSystem::ParallelFileSystem(PfsConfig config)
    : config_(std::move(config)) {
  IFDK_REQUIRE(config_.read_bandwidth_bytes_per_s > 0 &&
                   config_.write_bandwidth_bytes_per_s > 0,
               "PFS bandwidth must be positive");
  IFDK_REQUIRE(config_.stripe_bytes > 0 && config_.num_targets > 0,
               "PFS striping must be positive");
}

void ParallelFileSystem::write_object(const std::string& name,
                                      const void* data, std::size_t bytes) {
  std::vector<char> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  objects_[name] = std::move(payload);
}

void ParallelFileSystem::read_object(const std::string& name, void* data,
                                     std::size_t bytes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw IoError("PFS object not found: " + name);
  }
  if (it->second.size() != bytes) {
    throw IoError("PFS object " + name + " has " +
                  human_bytes(it->second.size()) + ", caller expected " +
                  human_bytes(bytes));
  }
  if (bytes > 0) std::memcpy(data, it->second.data(), bytes);
}

bool ParallelFileSystem::exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.count(name) > 0;
}

std::size_t ParallelFileSystem::object_size(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw IoError("PFS object not found: " + name);
  }
  return it->second.size();
}

void ParallelFileSystem::remove_object(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  objects_.erase(name);
}

std::vector<std::string> ParallelFileSystem::list_objects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, payload] : objects_) names.push_back(name);
  return names;
}

std::uint64_t ParallelFileSystem::total_bytes_stored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, payload] : objects_) total += payload.size();
  return total;
}

double ParallelFileSystem::estimate_read_seconds(std::uint64_t total_bytes,
                                                 int ranks) const {
  IFDK_ASSERT(ranks >= 1);
  // Shared aggregate bandwidth: rank count affects only the per-rank latency
  // overlap, not the transfer term (Eq. 8's BWload is an aggregate).
  return config_.latency_s +
         static_cast<double>(total_bytes) / config_.read_bandwidth_bytes_per_s;
}

double ParallelFileSystem::estimate_write_seconds(std::uint64_t total_bytes,
                                                  int ranks) const {
  IFDK_ASSERT(ranks >= 1);
  return config_.latency_s + static_cast<double>(total_bytes) /
                                 config_.write_bandwidth_bytes_per_s;
}

std::uint64_t ParallelFileSystem::stripes_for(std::uint64_t bytes) const {
  return bytes == 0 ? 0 : div_ceil(bytes, config_.stripe_bytes);
}

double ParallelFileSystem::stripe_utilization(std::uint64_t bytes) const {
  const std::uint64_t stripes = stripes_for(bytes);
  if (stripes == 0) return 0.0;
  const std::uint64_t busy =
      std::min<std::uint64_t>(stripes,
                              static_cast<std::uint64_t>(config_.num_targets));
  return static_cast<double>(busy) / static_cast<double>(config_.num_targets);
}

}  // namespace ifdk::pfs
