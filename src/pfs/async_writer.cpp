#include "pfs/async_writer.h"

#include <utility>

#include "common/timer.h"

namespace ifdk::pfs {

AsyncWriter::AsyncWriter(ParallelFileSystem& fs, std::size_t queue_capacity)
    : fs_(fs), queue_(queue_capacity), worker_([this] { run(); }) {}

AsyncWriter::~AsyncWriter() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

void AsyncWriter::enqueue(std::string name, std::vector<float> payload) {
  IFDK_REQUIRE(!finished_, "AsyncWriter: enqueue after finish()");
  if (!queue_.push(Item{std::move(name), std::move(payload)})) {
    // The queue only closes early when the writer thread failed; surface
    // that root cause instead of a generic refused-push message.
    finish();
    throw Error("AsyncWriter: queue closed before enqueue completed");
  }
}

void AsyncWriter::finish() {
  if (!finished_) {
    finished_ = true;
    queue_.close();
    if (worker_.joinable()) worker_.join();
  }
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

double AsyncWriter::busy_seconds() const {
  return busy_seconds_.load(std::memory_order_relaxed);
}

std::size_t AsyncWriter::writes_completed() const {
  return writes_.load(std::memory_order_relaxed);
}

void AsyncWriter::run() {
  while (auto item = queue_.pop()) {
    if (error_) continue;  // drain remaining items after a failure
    try {
      Timer t;
      fs_.write_object(item->name, item->payload.data(),
                       item->payload.size() * sizeof(float));
      busy_seconds_.store(busy_seconds_.load(std::memory_order_relaxed) +
                              t.seconds(),
                          std::memory_order_relaxed);
      writes_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      error_ = std::current_exception();
      // Close so a producer blocked on a full queue fails fast instead of
      // feeding a dead consumer.
      queue_.close();
    }
  }
}

}  // namespace ifdk::pfs
