#include "pfs/async_writer.h"

#include <utility>

#include "common/timer.h"

namespace ifdk::pfs {

AsyncWriter::AsyncWriter(ParallelFileSystem& fs, std::size_t queue_capacity)
    : fs_(fs),
      queue_(queue_capacity),
      streams_(1),
      worker_([this] { run(); }) {}

AsyncWriter::~AsyncWriter() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

AsyncWriter::StreamId AsyncWriter::open_stream() {
  IFDK_REQUIRE(!finished_, "AsyncWriter: open_stream after finish()");
  std::lock_guard<std::mutex> lock(mutex_);
  streams_.emplace_back();
  return streams_.size() - 1;
}

bool AsyncWriter::enqueue(StreamId stream, std::string name,
                          std::vector<float> payload) {
  IFDK_REQUIRE(!finished_, "AsyncWriter: enqueue after finish()");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    IFDK_ASSERT_MSG(stream < streams_.size(),
                    "AsyncWriter: enqueue on an unopened stream");
    // A poisoned stream accepts no further work; the caller learns the
    // root cause from finish_stream(). Other streams are unaffected.
    if (streams_[stream].error) return false;
    ++streams_[stream].pending;
  }
  if (!queue_.push(Item{stream, std::move(name), std::move(payload)})) {
    // Only finish()/the destructor close the queue: pushing afterwards is a
    // protocol violation, not a writer failure.
    std::lock_guard<std::mutex> lock(mutex_);
    --streams_[stream].pending;
    throw Error("AsyncWriter: queue closed before enqueue completed");
  }
  return true;
}

void AsyncWriter::enqueue(std::string name, std::vector<float> payload) {
  if (!enqueue(StreamId{0}, std::move(name), std::move(payload))) {
    // Root-cause behaviour of the single-stream API: surface the writer
    // error at the producer immediately (and only once).
    finish_stream(0);
    throw Error("AsyncWriter: queue closed before enqueue completed");
  }
}

void AsyncWriter::finish_stream(StreamId stream) {
  std::unique_lock<std::mutex> lock(mutex_);
  IFDK_ASSERT_MSG(stream < streams_.size(),
                  "AsyncWriter: finish_stream on an unopened stream");
  drained_.wait(lock, [&] { return streams_[stream].pending == 0; });
  StreamState& state = streams_[stream];
  if (state.error && !state.error_claimed) {
    state.error_claimed = true;
    std::exception_ptr e = state.error;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void AsyncWriter::finish() {
  if (!finished_) {
    finished_ = true;
    queue_.close();
    if (worker_.joinable()) worker_.join();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (StreamState& state : streams_) {
    if (state.error && !state.error_claimed) {
      state.error_claimed = true;
      std::exception_ptr e = state.error;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

double AsyncWriter::busy_seconds() const {
  return busy_seconds_.load(std::memory_order_relaxed);
}

std::size_t AsyncWriter::writes_completed() const {
  return writes_.load(std::memory_order_relaxed);
}

void AsyncWriter::run() {
  while (auto item = queue_.pop()) {
    bool poisoned;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      poisoned = static_cast<bool>(streams_[item->stream].error);
    }
    if (!poisoned) {
      try {
        Timer t;
        fs_.write_object(item->name, item->payload.data(),
                         item->payload.size() * sizeof(float));
        busy_seconds_.store(busy_seconds_.load(std::memory_order_relaxed) +
                                t.seconds(),
                            std::memory_order_relaxed);
        writes_.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        streams_[item->stream].error = std::current_exception();
      }
    }
    // Written or dropped: either way the item is no longer pending.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --streams_[item->stream].pending;
    }
    drained_.notify_all();
  }
}

}  // namespace ifdk::pfs
