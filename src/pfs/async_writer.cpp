#include "pfs/async_writer.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/timer.h"
#include "common/volume.h"
#include "postproc/compression.h"

namespace ifdk::pfs {

double StreamStats::psnr_db() const {
  if (values == 0 || sum_squared_error == 0) {
    return std::numeric_limits<double>::infinity();
  }
  if (peak <= 0) return std::numeric_limits<double>::quiet_NaN();
  const double mse = sum_squared_error / static_cast<double>(values);
  return 10.0 * std::log10(peak * peak / mse);
}

std::vector<float> read_compressed_object(const ParallelFileSystem& fs,
                                          const std::string& name) {
  const std::size_t bytes = fs.object_size(name);
  std::vector<std::uint8_t> blob(bytes);
  fs.read_object(name, blob.data(), bytes);
  const postproc::CompressedVolume cv =
      postproc::deserialize_volume(blob.data(), blob.size());
  const Volume volume = postproc::decompress(cv);
  return std::vector<float>(volume.data(), volume.data() + volume.voxels());
}

AsyncWriter::AsyncWriter(ParallelFileSystem& fs, std::size_t queue_capacity)
    : fs_(fs),
      queue_(queue_capacity),
      streams_(1),
      worker_([this] { run(); }) {}

AsyncWriter::~AsyncWriter() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

AsyncWriter::StreamId AsyncWriter::open_stream(
    std::optional<StreamCompression> compression) {
  IFDK_REQUIRE(!finished_, "AsyncWriter: open_stream after finish()");
  IFDK_REQUIRE(!compression || (compression->bits >= 8 &&
                                compression->bits <= 16),
               "AsyncWriter: store quantization depth must be 8..16 bits");
  std::lock_guard<std::mutex> lock(mutex_);
  streams_.emplace_back();
  streams_.back().compression = compression;
  return streams_.size() - 1;
}

StreamStats AsyncWriter::stream_stats(StreamId stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  IFDK_ASSERT_MSG(stream < streams_.size(),
                  "AsyncWriter: stream_stats on an unopened stream");
  return streams_[stream].stats;
}

bool AsyncWriter::enqueue(StreamId stream, std::string name,
                          std::vector<float> payload) {
  IFDK_REQUIRE(!finished_, "AsyncWriter: enqueue after finish()");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    IFDK_ASSERT_MSG(stream < streams_.size(),
                    "AsyncWriter: enqueue on an unopened stream");
    // A poisoned stream accepts no further work; the caller learns the
    // root cause from finish_stream(). Other streams are unaffected.
    if (streams_[stream].error) return false;
    ++streams_[stream].pending;
  }
  if (!queue_.push(Item{stream, std::move(name), std::move(payload)})) {
    // Only finish()/the destructor close the queue: pushing afterwards is a
    // protocol violation, not a writer failure.
    std::lock_guard<std::mutex> lock(mutex_);
    --streams_[stream].pending;
    throw Error("AsyncWriter: queue closed before enqueue completed");
  }
  return true;
}

void AsyncWriter::enqueue(std::string name, std::vector<float> payload) {
  if (!enqueue(StreamId{0}, std::move(name), std::move(payload))) {
    // Root-cause behaviour of the single-stream API: surface the writer
    // error at the producer immediately (and only once).
    finish_stream(0);
    throw Error("AsyncWriter: queue closed before enqueue completed");
  }
}

void AsyncWriter::finish_stream(StreamId stream) {
  std::unique_lock<std::mutex> lock(mutex_);
  IFDK_ASSERT_MSG(stream < streams_.size(),
                  "AsyncWriter: finish_stream on an unopened stream");
  drained_.wait(lock, [&] { return streams_[stream].pending == 0; });
  StreamState& state = streams_[stream];
  if (state.error && !state.error_claimed) {
    state.error_claimed = true;
    std::exception_ptr e = state.error;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void AsyncWriter::finish() {
  if (!finished_) {
    finished_ = true;
    queue_.close();
    if (worker_.joinable()) worker_.join();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (StreamState& state : streams_) {
    if (state.error && !state.error_claimed) {
      state.error_claimed = true;
      std::exception_ptr e = state.error;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

double AsyncWriter::busy_seconds() const {
  return busy_seconds_.load(std::memory_order_relaxed);
}

std::size_t AsyncWriter::writes_completed() const {
  return writes_.load(std::memory_order_relaxed);
}

void AsyncWriter::run() {
  while (auto item = queue_.pop()) {
    bool poisoned;
    std::optional<StreamCompression> compression;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      poisoned = static_cast<bool>(streams_[item->stream].error);
      compression = streams_[item->stream].compression;
    }
    if (!poisoned) {
      try {
        Timer t;
        const std::size_t n = item->payload.size();
        const std::size_t raw_bytes = n * sizeof(float);
        StreamStats delta;
        delta.raw_bytes = raw_bytes;
        if (compression && n > 0) {
          // Compress on the writer thread (overlapping the producer, like
          // the write itself), store the self-contained serialized object,
          // and account the quantization error by round-tripping the codec
          // — the exact values a reader will see.
          Volume vol(n, 1, 1, VolumeLayout::kXMajor, /*zero_fill=*/false);
          std::memcpy(vol.data(), item->payload.data(), raw_bytes);
          const postproc::CompressedVolume cv =
              postproc::compress(vol, compression->bits);
          const std::vector<std::uint8_t> blob =
              postproc::serialize_volume(cv);
          fs_.write_object(item->name, blob.data(), blob.size());
          delta.stored_bytes = blob.size();
          const Volume rec = postproc::decompress(cv);
          delta.values = n;
          for (std::size_t i = 0; i < n; ++i) {
            const double v = vol.data()[i];
            const double d = v - static_cast<double>(rec.data()[i]);
            delta.sum_squared_error += d * d;
            delta.peak = std::max(delta.peak, std::abs(v));
          }
        } else {
          fs_.write_object(item->name, item->payload.data(), raw_bytes);
          delta.stored_bytes = raw_bytes;
        }
        busy_seconds_.store(busy_seconds_.load(std::memory_order_relaxed) +
                                t.seconds(),
                            std::memory_order_relaxed);
        writes_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          StreamStats& stats = streams_[item->stream].stats;
          stats.raw_bytes += delta.raw_bytes;
          stats.stored_bytes += delta.stored_bytes;
          stats.sum_squared_error += delta.sum_squared_error;
          stats.peak = std::max(stats.peak, delta.peak);
          stats.values += delta.values;
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        streams_[item->stream].error = std::current_exception();
      }
    }
    // Written or dropped: either way the item is no longer pending.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --streams_[item->stream].pending;
    }
    drained_.notify_all();
  }
}

}  // namespace ifdk::pfs
