// Asynchronous PFS store path (the Fig. 4b "Store"-stage overlap).
//
// The paper's row root must write Nz slices while the tail of the row-Reduce
// is still arriving; a blocking write_object loop would serialize the two
// stages. AsyncWriter runs a single background writer thread fed through a
// bounded CircularBuffer, so enqueue() returns as soon as the payload is
// queued and the producer (the reduce fold) keeps running.
//
// Writes are multiplexed over *streams* so the streaming-4DCT mode can pipe
// every volume's slices through one writer thread: each volume opens its own
// stream, and a write error poisons only that stream — its remaining items
// are dropped, its finish_stream() rethrows, and every other stream keeps
// writing (volume v+1 must not be corrupted by volume v's failure). Write
// order is FIFO across streams.
//
// A stream may opt into the COMPRESSED store mode (paper §8 future work):
// its payloads are quantized + RLE-compressed (the lossy postproc codec) on
// the writer thread and stored as self-contained serialized
// CompressedVolume objects, with the raw/stored byte counts and the
// quantization error accumulated per stream so the caller can report the
// store ratio and PSNR per volume. Compression rides the writer thread, so
// it overlaps the producer exactly like the writes themselves do.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/circular_buffer.h"
#include "pfs/pfs.h"

namespace ifdk::pfs {

/// Opt-in compressed store mode of one AsyncWriter stream.
struct StreamCompression {
  /// Quantization depth of the lossy store codec, 8..16 bits per value.
  int bits = 12;
};

/// Byte and error accounting of one stream, accumulated write by write.
struct StreamStats {
  /// Bytes the producer enqueued (4 * floats).
  std::size_t raw_bytes = 0;
  /// Bytes that hit the store (serialized compressed objects, headers
  /// included; equals raw_bytes for uncompressed streams).
  std::size_t stored_bytes = 0;
  /// Sum of squared quantization errors across every stored value.
  double sum_squared_error = 0;
  /// Largest |value| seen (the PSNR peak).
  double peak = 0;
  /// Number of values stored (the PSNR denominator).
  std::size_t values = 0;

  /// raw_bytes / stored_bytes (1 when nothing was stored yet).
  double ratio() const {
    return stored_bytes == 0 ? 1.0
                             : static_cast<double>(raw_bytes) /
                                   static_cast<double>(stored_bytes);
  }
  /// Peak signal-to-noise ratio of the stored stream in dB; +inf for a
  /// lossless (uncompressed) or empty stream, NaN when the peak is zero.
  double psnr_db() const;
};

/// Background writer over a ParallelFileSystem. Single producer / single
/// writer thread; enqueue() applies back-pressure when `queue_capacity`
/// payloads are in flight. finish() must be called before destruction to
/// observe errors; the destructor drains silently if it was not.
class AsyncWriter {
 public:
  /// Identifies one independent write stream (one 4D-CT volume). Stream 0
  /// always exists — the single-stream enqueue/finish API below uses it.
  using StreamId = std::size_t;

  /// Starts the writer thread. `fs` must outlive this object.
  explicit AsyncWriter(ParallelFileSystem& fs, std::size_t queue_capacity = 8);

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Joins the writer thread, draining queued writes. Errors that finish()
  /// did not already surface are swallowed (destructors must not throw);
  /// call finish() to observe them.
  ~AsyncWriter();

  /// Registers a new independent stream and returns its id. Must not be
  /// called after finish(). With `compression` set the stream stores
  /// serialized CompressedVolume objects instead of raw floats (the payload
  /// is compressed on the writer thread); read them back with
  /// read_compressed_object(). Stream 0 (the single-stream API) is always
  /// uncompressed.
  StreamId open_stream(std::optional<StreamCompression> compression = {});

  /// This stream's byte/error accounting so far. Call after finish_stream()
  /// (or finish()) for totals that include every write; values observed
  /// mid-stream are a consistent snapshot.
  StreamStats stream_stats(StreamId stream) const;

  /// Queues one object write on `stream` (payload is taken by value so the
  /// caller's buffer is free immediately). Blocks while the queue is full —
  /// the back-pressure that keeps the store stage from buffering an
  /// unbounded volume. Returns false without queueing when the stream has
  /// already failed (the error surfaces from finish_stream()); the caller
  /// should stop feeding that stream. Throws Error if called after finish().
  bool enqueue(StreamId stream, std::string name, std::vector<float> payload);

  /// Waits until every write queued on `stream` has hit the store (or been
  /// dropped by a poisoned stream), then rethrows the stream's first error
  /// if one occurred (once; a second call returns cleanly). Other streams
  /// are unaffected. May be called while other streams keep enqueueing.
  void finish_stream(StreamId stream);

  /// Single-stream convenience (stream 0): like enqueue(0, ...) but an
  /// already-failed stream rethrows the root-cause error immediately
  /// instead of returning false, preserving the PR 3 contract that a
  /// blocked producer gets the writer's error rather than silence.
  void enqueue(std::string name, std::vector<float> payload);

  /// Closes the queue, waits for every queued write to hit the store, and
  /// rethrows the first error that no finish_stream() call has claimed yet
  /// (if any). Idempotent.
  void finish();

  /// Wall-clock seconds the writer thread spent inside write_object — the
  /// "busy" numerator of the store stage's overlap efficiency.
  double busy_seconds() const;

  /// Number of objects written so far (successful writes only).
  std::size_t writes_completed() const;

 private:
  struct Item {
    StreamId stream;
    std::string name;
    std::vector<float> payload;
  };

  /// Per-stream book-keeping, guarded by mutex_.
  struct StreamState {
    std::size_t pending = 0;       ///< enqueued, not yet written/dropped
    std::exception_ptr error;      ///< first write failure on this stream
    bool error_claimed = false;    ///< a finish rethrew it already
    std::optional<StreamCompression> compression;  ///< store codec, if any
    StreamStats stats;             ///< byte/error accounting
  };

  void run();

  ParallelFileSystem& fs_;
  CircularBuffer<Item> queue_;
  mutable std::mutex mutex_;
  std::condition_variable drained_;  ///< signalled whenever pending drops
  std::vector<StreamState> streams_;
  std::thread worker_;
  bool finished_ = false;
  std::atomic<double> busy_seconds_{0.0};
  std::atomic<std::size_t> writes_{0};
};

/// Reads one serialized CompressedVolume object (as written by a compressed
/// AsyncWriter stream) and returns its decompressed values. Corrupt objects
/// throw CompressionError.
std::vector<float> read_compressed_object(const ParallelFileSystem& fs,
                                          const std::string& name);

}  // namespace ifdk::pfs
