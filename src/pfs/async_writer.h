// Asynchronous PFS store path (the Fig. 4b "Store"-stage overlap).
//
// The paper's row root must write Nz slices while the tail of the row-Reduce
// is still arriving; a blocking write_object loop would serialize the two
// stages. AsyncWriter runs a single background writer thread fed through a
// bounded CircularBuffer, so enqueue() returns as soon as the payload is
// queued and the producer (the reduce fold) keeps running. Write order is
// FIFO, errors are captured on the writer thread and rethrown from finish().
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "common/circular_buffer.h"
#include "pfs/pfs.h"

namespace ifdk::pfs {

/// Background writer over a ParallelFileSystem. Single producer / single
/// writer thread; enqueue() applies back-pressure when `queue_capacity`
/// payloads are in flight. finish() must be called before destruction to
/// observe errors; the destructor drains silently if it was not.
class AsyncWriter {
 public:
  /// Starts the writer thread. `fs` must outlive this object.
  explicit AsyncWriter(ParallelFileSystem& fs, std::size_t queue_capacity = 8);

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Joins the writer thread, draining queued writes. Errors that finish()
  /// did not already surface are swallowed (destructors must not throw);
  /// call finish() to observe them.
  ~AsyncWriter();

  /// Queues one object write (payload is taken by value so the caller's
  /// buffer is free immediately). Blocks while the queue is full — the
  /// back-pressure that keeps the store stage from buffering an unbounded
  /// volume. Throws Error if called after finish().
  void enqueue(std::string name, std::vector<float> payload);

  /// Closes the queue, waits for every queued write to hit the store, and
  /// rethrows the first writer-thread error (if any). Idempotent.
  void finish();

  /// Wall-clock seconds the writer thread spent inside write_object — the
  /// "busy" numerator of the store stage's overlap efficiency.
  double busy_seconds() const;

  /// Number of objects written so far (successful writes only).
  std::size_t writes_completed() const;

 private:
  struct Item {
    std::string name;
    std::vector<float> payload;
  };

  void run();

  ParallelFileSystem& fs_;
  CircularBuffer<Item> queue_;
  std::thread worker_;
  bool finished_ = false;
  std::exception_ptr error_;
  std::atomic<double> busy_seconds_{0.0};
  std::atomic<std::size_t> writes_{0};
};

}  // namespace ifdk::pfs
