#include "iterative/iterative.h"

#include <algorithm>
#include <cmath>

#include "backproj/interp2.h"
#include "common/error.h"
#include "projector/forward.h"

namespace ifdk::iterative {

namespace {

constexpr float kEps = 1e-6f;

/// Forward-projects `volume` at every angle of `betas` using `fp`.
Image2D forward_view(const projector::ForwardProjector& fp,
                     const Volume& volume, double beta) {
  return fp.project(volume, beta);
}

Volume ones_volume(const geo::CbctGeometry& g) {
  Volume v(g.nx, g.ny, g.nz, VolumeLayout::kXMajor, /*zero_fill=*/false);
  v.fill(1.0f);
  return v;
}

}  // namespace

void backproject_unweighted(const geo::CbctGeometry& geometry,
                            const Image2D& view, double beta, Volume& volume,
                            ThreadPool* pool) {
  IFDK_REQUIRE(volume.layout() == VolumeLayout::kXMajor,
               "iterative solvers use the standard X-major layout");
  IFDK_REQUIRE(view.width() == geometry.nu && view.height() == geometry.nv,
               "view size does not match the geometry");
  const geo::Mat34 p = geo::make_projection_matrix(geometry, beta);
  const auto m = p.to_float();
  const float* img = view.data();
  const std::size_t nu = geometry.nu;
  const std::size_t nv = geometry.nv;

  auto slice_task = [&](std::size_t k) {
    const float fk = static_cast<float>(k);
    float* out = volume.slice(k);
    for (std::size_t j = 0; j < geometry.ny; ++j) {
      const float fj = static_cast<float>(j);
      float* row = out + j * geometry.nx;
      for (std::size_t i = 0; i < geometry.nx; ++i) {
        const float fi = static_cast<float>(i);
        const float x = m[0] * fi + m[1] * fj + m[2] * fk + m[3];
        const float y = m[4] * fi + m[5] * fj + m[6] * fk + m[7];
        const float z = m[8] * fi + m[9] * fj + m[10] * fk + m[11];
        const float f = 1.0f / z;
        row[i] += bp::interp2(img, nu, nv, x * f, y * f);
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, geometry.nz, slice_task);
  } else {
    for (std::size_t k = 0; k < geometry.nz; ++k) slice_task(k);
  }
}

Volume sart(const geo::CbctGeometry& geometry,
            std::span<const Image2D> projections, const IterOptions& options) {
  geometry.validate();
  IFDK_REQUIRE(projections.size() == geometry.np,
               "one projection per gantry angle is required");
  IFDK_REQUIRE(options.subsets >= 1, "subsets must be >= 1");
  IFDK_REQUIRE(options.lambda > 0 && options.lambda < 2,
               "SART relaxation must lie in (0, 2)");

  projector::ForwardOptions fopts;
  fopts.step_fraction = options.step_fraction;
  fopts.pool = options.pool;
  projector::ForwardProjector fp(geometry, fopts);

  // Row normalization: ray lengths through the volume, A * 1.
  const Volume ones = ones_volume(geometry);
  std::vector<Image2D> ray_norm;
  ray_norm.reserve(geometry.np);
  for (std::size_t s = 0; s < geometry.np; ++s) {
    ray_norm.push_back(forward_view(fp, ones, geometry.beta(s)));
  }

  // Column normalization per subset: B_subset * 1.
  Image2D ones_img(geometry.nu, geometry.nv, /*zero_fill=*/false);
  ones_img.fill(1.0f);
  const int subsets = options.subsets;
  std::vector<Volume> vox_norm;
  vox_norm.reserve(static_cast<std::size_t>(subsets));
  for (int sub = 0; sub < subsets; ++sub) {
    Volume norm(geometry.nx, geometry.ny, geometry.nz);
    for (std::size_t s = static_cast<std::size_t>(sub); s < geometry.np;
         s += static_cast<std::size_t>(subsets)) {
      backproject_unweighted(geometry, ones_img, geometry.beta(s), norm,
                             options.pool);
    }
    vox_norm.push_back(std::move(norm));
  }

  Volume x(geometry.nx, geometry.ny, geometry.nz);
  Image2D resid(geometry.nu, geometry.nv, /*zero_fill=*/false);
  for (int it = 0; it < options.iterations; ++it) {
    for (int sub = 0; sub < subsets; ++sub) {
      Volume update(geometry.nx, geometry.ny, geometry.nz);
      for (std::size_t s = static_cast<std::size_t>(sub); s < geometry.np;
           s += static_cast<std::size_t>(subsets)) {
        const Image2D fwd = forward_view(fp, x, geometry.beta(s));
        for (std::size_t n = 0; n < resid.pixels(); ++n) {
          const float norm = std::max(ray_norm[s].data()[n], kEps);
          resid.data()[n] =
              (projections[s].data()[n] - fwd.data()[n]) / norm;
        }
        backproject_unweighted(geometry, resid, geometry.beta(s), update,
                               options.pool);
      }
      const Volume& norm = vox_norm[static_cast<std::size_t>(sub)];
      for (std::size_t n = 0; n < x.voxels(); ++n) {
        const float denom = std::max(norm.data()[n], kEps);
        x.data()[n] += static_cast<float>(options.lambda) *
                       update.data()[n] / denom;
      }
    }
    if (options.on_iteration) options.on_iteration(it, x);
  }
  return x;
}

Volume art(const geo::CbctGeometry& geometry,
           std::span<const Image2D> projections, IterOptions options) {
  // ART = OS-SART with one view per subset (a strictly sequential sweep);
  // the small per-view steps want a gentler relaxation by default.
  options.subsets = static_cast<int>(geometry.np);
  return sart(geometry, projections, options);
}

Volume mlem(const geo::CbctGeometry& geometry,
            std::span<const Image2D> projections, const IterOptions& options) {
  geometry.validate();
  IFDK_REQUIRE(projections.size() == geometry.np,
               "one projection per gantry angle is required");
  for (const auto& p : projections) {
    for (std::size_t n = 0; n < p.pixels(); ++n) {
      IFDK_REQUIRE(p.data()[n] >= 0.0f, "MLEM requires non-negative data");
    }
  }

  projector::ForwardOptions fopts;
  fopts.step_fraction = options.step_fraction;
  fopts.pool = options.pool;
  projector::ForwardProjector fp(geometry, fopts);

  // Sensitivity image: B applied to all-ones views (A^T 1).
  Image2D ones_img(geometry.nu, geometry.nv, /*zero_fill=*/false);
  ones_img.fill(1.0f);
  Volume sensitivity(geometry.nx, geometry.ny, geometry.nz);
  for (std::size_t s = 0; s < geometry.np; ++s) {
    backproject_unweighted(geometry, ones_img, geometry.beta(s), sensitivity,
                           options.pool);
  }

  Volume x(geometry.nx, geometry.ny, geometry.nz, VolumeLayout::kXMajor,
           /*zero_fill=*/false);
  x.fill(1.0f);  // strictly positive start (multiplicative updates)
  Image2D ratio(geometry.nu, geometry.nv, /*zero_fill=*/false);
  for (int it = 0; it < options.iterations; ++it) {
    Volume ratio_bp(geometry.nx, geometry.ny, geometry.nz);
    for (std::size_t s = 0; s < geometry.np; ++s) {
      const Image2D fwd = forward_view(fp, x, geometry.beta(s));
      for (std::size_t n = 0; n < ratio.pixels(); ++n) {
        ratio.data()[n] =
            projections[s].data()[n] / std::max(fwd.data()[n], kEps);
      }
      backproject_unweighted(geometry, ratio, geometry.beta(s), ratio_bp,
                             options.pool);
    }
    for (std::size_t n = 0; n < x.voxels(); ++n) {
      x.data()[n] *= ratio_bp.data()[n] /
                     std::max(sensitivity.data()[n], kEps);
    }
    if (options.on_iteration) options.on_iteration(it, x);
  }
  return x;
}

double residual_rmse(const geo::CbctGeometry& geometry, const Volume& volume,
                     std::span<const Image2D> projections,
                     double step_fraction, ThreadPool* pool) {
  projector::ForwardOptions fopts;
  fopts.step_fraction = step_fraction;
  fopts.pool = pool;
  projector::ForwardProjector fp(geometry, fopts);
  double acc = 0;
  std::size_t count = 0;
  for (std::size_t s = 0; s < geometry.np; ++s) {
    const Image2D fwd = fp.project(volume, geometry.beta(s));
    for (std::size_t n = 0; n < fwd.pixels(); ++n) {
      const double d = fwd.data()[n] - projections[s].data()[n];
      acc += d * d;
      ++count;
    }
  }
  return std::sqrt(acc / static_cast<double>(count));
}

}  // namespace ifdk::iterative
