#include "iterative/distributed.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/image.h"
#include "common/volume.h"
#include "engine/engine.h"
#include "gpusim/device.h"
#include "iterative/iterative.h"
#include "minimpi/minimpi.h"
#include "projector/forward.h"

namespace ifdk::iterative {

namespace {

/// Matches the single-node solvers' normalization floor (iterative.cpp) —
/// the parity contract requires the identical constant.
constexpr float kEps = 1e-6f;

/// Per-rank results the workload owns (the generic wall/total stats ride
/// the engine's RankContext; these fields are identical on every rank after
/// the final barrier, so the caller reads rank 0's).
struct IterRankOut {
  int iterations_run = 0;
  std::vector<double> residual_rmse;
};

/// The per-rank body of the distributed solver (see distributed.h for the
/// decomposition and the parity contract).
class IterativeWorkload final : public engine::Workload {
 public:
  IterativeWorkload(pfs::ParallelFileSystem& fs, const IfdkOptions& options,
                    const JobSpec& job, const DecompositionPlan& plan)
      : fs_(fs), options_(options), job_(job), plan_(plan) {
    outs_.resize(static_cast<std::size_t>(options.ranks));
  }

  /// Rank `rank`'s convergence record (identical across ranks).
  const IterRankOut& out(std::size_t rank) const { return outs_[rank]; }

  /// One rank's solve: load shard, normalize, iterate, store (rank 0).
  void run_rank(engine::RankContext& ctx) override {
    const DecompositionPlan& plan = plan_;
    const geo::CbctGeometry& g = plan.geometry;
    const IterParams& params = job_.iterative;
    const int subsets = params.subsets;

    mpi::Comm& world = ctx.world;
    const int rank = ctx.rank;
    IterRankOut& out = outs_[static_cast<std::size_t>(rank)];
    Timer rank_timer;

    // The replicated-volume working set must fit the simulated device; the
    // allocator enforces what run_iterative's admission check promised.
    gpusim::Device device(options_.device);
    gpusim::DeviceBuffer working_set =
        device.allocate(plan.iter_device_bytes(subsets));

    // ---- Load this rank's view shard (ascending projection index) ---------
    const std::vector<std::size_t> shard =
        plan.projection_shard(plan.row_of(rank), plan.col_of(rank));
    std::vector<Image2D> proj;
    proj.reserve(shard.size());
    ctx.wall.time("load", [&] {
      for (const std::size_t s : shard) {
        Image2D img(g.nu, g.nv, /*zero_fill=*/false);
        fs_.read_object(engine::object_name(job_.input_prefix, s), img.data(),
                        img.bytes());
        proj.push_back(std::move(img));
      }
    });
    const bool is_mlem = params.algorithm == Algorithm::kMlem;
    if (is_mlem) {
      for (const Image2D& p : proj) {
        for (std::size_t n = 0; n < p.pixels(); ++n) {
          IFDK_REQUIRE(p.data()[n] >= 0.0f,
                       "MLEM requires non-negative data");
        }
      }
    }

    projector::ForwardOptions fopts;
    fopts.step_fraction = params.step_fraction;
    projector::ForwardProjector fp(g, fopts);

    // ---- Volume all-reduce: segmented tree ireduce to rank 0 + bcast ------
    // At P = 1 the root fold is a copy and the bcast a no-op, so the summed
    // volume is bitwise the local accumulation — the parity contract's
    // single-rank leg. The bcast makes the result bitwise-identical on
    // every rank, which is what keeps the iterates (and the convergence
    // branch) rank-consistent.
    std::vector<float> reduce_recv(rank == 0 ? plan.volume_floats() : 0);
    auto allreduce_volume = [&](Volume& v) {
      ctx.wall.time("allreduce", [&] {
        mpi::Comm::CollectiveRequest req = world.ireduce(
            v.data(), rank == 0 ? reduce_recv.data() : nullptr, v.voxels(),
            mpi::ReduceOp::kSum, /*root=*/0, plan.reduce_segment_floats, {},
            mpi::ReduceAlgo::kTree);
        req.wait();
        if (rank == 0) {
          std::copy(reduce_recv.begin(), reduce_recv.begin() + v.voxels(),
                    v.data());
        }
        world.bcast(v.data(), v.voxels() * sizeof(float), /*root=*/0);
      });
    };

    // Views of subset `sub` this rank owns, in ascending projection order —
    // on one rank exactly the single-node sweep order s = sub, sub+subsets…
    auto owned_in_subset = [&](int sub) {
      std::vector<std::size_t> views;
      for (std::size_t idx = 0; idx < shard.size(); ++idx) {
        if (shard[idx] % static_cast<std::size_t>(subsets) ==
            static_cast<std::size_t>(sub)) {
          views.push_back(idx);
        }
      }
      return views;
    };

    // ---- Normalization setup (one all-reduced volume per subset) ----------
    const std::uint64_t setup_before = world.collective_tags_reserved();
    std::vector<Image2D> ray_norm;   // SART: A*1 for owned views (local)
    std::vector<Volume> vox_norm;    // SART: B_subset*1; MLEM: sensitivity
    ctx.wall.time("normalize", [&] {
      Image2D ones_img(g.nu, g.nv, /*zero_fill=*/false);
      ones_img.fill(1.0f);
      if (!is_mlem) {
        Volume ones(g.nx, g.ny, g.nz, VolumeLayout::kXMajor,
                    /*zero_fill=*/false);
        ones.fill(1.0f);
        ray_norm.reserve(shard.size());
        for (const std::size_t s : shard) {
          ray_norm.push_back(fp.project(ones, g.beta(s)));
        }
      }
      vox_norm.reserve(static_cast<std::size_t>(is_mlem ? 1 : subsets));
      for (int sub = 0; sub < (is_mlem ? 1 : subsets); ++sub) {
        Volume norm(g.nx, g.ny, g.nz);
        for (const std::size_t idx :
             is_mlem ? owned_in_subset(0) : owned_in_subset(sub)) {
          backproject_unweighted(g, ones_img, g.beta(shard[idx]), norm);
        }
        allreduce_volume(norm);
        vox_norm.push_back(std::move(norm));
      }
    });
    engine::assert_tag_budget(
        setup_before, world.collective_tags_reserved(),
        plan.iter_setup_tag_budget(is_mlem ? 1 : subsets),
        "iterative normalization exceeded the plan's setup tag budget");

    // ---- Iterate ----------------------------------------------------------
    Volume x(g.nx, g.ny, g.nz, VolumeLayout::kXMajor,
             /*zero_fill=*/!is_mlem);
    if (is_mlem) x.fill(1.0f);  // strictly positive start
    Image2D resid(g.nu, g.nv, /*zero_fill=*/false);
    out.residual_rmse.reserve(static_cast<std::size_t>(params.iterations));
    const double total_pixels =
        static_cast<double>(g.np) * static_cast<double>(plan.pixels);
    for (int it = 0; it < params.iterations; ++it) {
      const std::uint64_t iter_before = world.collective_tags_reserved();
      double local_sumsq = 0;  // raw (p - A x) over owned views, this sweep
      if (!is_mlem) {
        for (int sub = 0; sub < subsets; ++sub) {
          Volume update(g.nx, g.ny, g.nz);
          for (const std::size_t idx : owned_in_subset(sub)) {
            const std::size_t s = shard[idx];
            Image2D fwd;
            ctx.wall.time("forward",
                          [&] { fwd = fp.project(x, g.beta(s)); });
            for (std::size_t n = 0; n < resid.pixels(); ++n) {
              const float diff = proj[idx].data()[n] - fwd.data()[n];
              local_sumsq += static_cast<double>(diff) * diff;
              const float norm = std::max(ray_norm[idx].data()[n], kEps);
              resid.data()[n] = diff / norm;
            }
            ctx.wall.time("backproject", [&] {
              backproject_unweighted(g, resid, g.beta(s), update);
            });
          }
          allreduce_volume(update);
          const Volume& norm = vox_norm[static_cast<std::size_t>(sub)];
          ctx.wall.time("update", [&] {
            for (std::size_t n = 0; n < x.voxels(); ++n) {
              const float denom = std::max(norm.data()[n], kEps);
              x.data()[n] += static_cast<float>(params.lambda) *
                             update.data()[n] / denom;
            }
          });
        }
      } else {
        Volume ratio_bp(g.nx, g.ny, g.nz);
        Image2D ratio(g.nu, g.nv, /*zero_fill=*/false);
        for (std::size_t idx = 0; idx < shard.size(); ++idx) {
          const std::size_t s = shard[idx];
          Image2D fwd;
          ctx.wall.time("forward", [&] { fwd = fp.project(x, g.beta(s)); });
          for (std::size_t n = 0; n < ratio.pixels(); ++n) {
            const float diff = proj[idx].data()[n] - fwd.data()[n];
            local_sumsq += static_cast<double>(diff) * diff;
            ratio.data()[n] =
                proj[idx].data()[n] / std::max(fwd.data()[n], kEps);
          }
          ctx.wall.time("backproject", [&] {
            backproject_unweighted(g, ratio, g.beta(s), ratio_bp);
          });
        }
        allreduce_volume(ratio_bp);
        const Volume& sens = vox_norm[0];
        ctx.wall.time("update", [&] {
          for (std::size_t n = 0; n < x.voxels(); ++n) {
            x.data()[n] *= ratio_bp.data()[n] /
                           std::max(sens.data()[n], kEps);
          }
        });
      }

      // Rank-consistent convergence check: one scalar allreduce, every rank
      // sees the identical reduced value and takes the identical branch.
      float local = static_cast<float>(local_sumsq);
      float total = 0;
      ctx.wall.time("allreduce", [&] {
        world.allreduce(&local, &total, 1, mpi::ReduceOp::kSum);
      });
      const double rmse = std::sqrt(static_cast<double>(total) / total_pixels);
      engine::assert_tag_budget(
          iter_before, world.collective_tags_reserved(),
          plan.iter_iteration_tag_budget(is_mlem ? 1 : subsets),
          "iterative iteration exceeded the plan's tag budget");
      out.residual_rmse.push_back(rmse);
      out.iterations_run = it + 1;
      if (params.stop_rmse > 0 && rmse <= params.stop_rmse) break;
    }

    // ---- Store (rank 0 writes every slice; the volume is replicated) ------
    if (rank == 0) {
      ctx.wall.time("store", [&] {
        for (std::size_t k = 0; k < g.nz; ++k) {
          fs_.write_object(engine::object_name(job_.output_prefix, k),
                           x.slice(k), plan.slice_px * sizeof(float));
        }
      });
    }
    world.barrier();
    ctx.total = rank_timer.seconds();
    if (ctx.total > 0) {
      ctx.efficiency.add("compute",
                         (ctx.wall.get("forward") +
                          ctx.wall.get("backproject") +
                          ctx.wall.get("update")) /
                             ctx.total);
      ctx.efficiency.add("allreduce", ctx.wall.get("allreduce") / ctx.total);
    }
  }

 private:
  pfs::ParallelFileSystem& fs_;
  const IfdkOptions& options_;
  const JobSpec& job_;
  const DecompositionPlan& plan_;
  std::vector<IterRankOut> outs_;
};

}  // namespace

IterStats run_iterative(const geo::CbctGeometry& geometry,
                        pfs::ParallelFileSystem& fs,
                        const IfdkOptions& options, const JobSpec& job) {
  options.validate();
  job.validate();
  IFDK_REQUIRE(job.workload == WorkloadKind::kIterative,
               "run_iterative executes iterative jobs only; FDK jobs "
               "dispatch through run_streaming");
  const geo::CbctGeometry g = job.geometry.value_or(geometry);
  const DecompositionPlan plan = DecompositionPlan::make(g, options);
  const int subsets =
      job.iterative.algorithm == Algorithm::kMlem ? 1 : job.iterative.subsets;
  if (plan.iter_device_bytes(subsets) > options.device.memory_bytes) {
    throw DeviceOutOfMemory(
        "iterative reconstruction needs " +
        std::to_string(plan.iter_device_bytes(subsets)) +
        " B of device memory (replicated volume + " +
        std::to_string(subsets) +
        " column-norm volume(s) + the view shard) but the device has " +
        std::to_string(options.device.memory_bytes) + " B");
  }

  IterativeWorkload workload(fs, options, job, plan);
  const engine::EngineStats engine_stats =
      engine::run(options.ranks, workload);

  IterStats out;
  out.grid = plan.grid;
  out.algorithm = to_string(job.iterative.algorithm);
  out.wall = engine_stats.wall;
  out.wall_total = engine_stats.wall_total;
  // Every rank recorded the identical (all-reduced) trajectory; publish
  // rank 0's.
  out.iterations_run = workload.out(0).iterations_run;
  out.residual_rmse = workload.out(0).residual_rmse;
  out.iterations_per_second =
      out.wall_total > 0 ? out.iterations_run / out.wall_total : 0;
  return out;
}

}  // namespace ifdk::iterative
