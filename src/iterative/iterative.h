// Iterative reconstruction on top of the forward/back-projection operators.
//
// Paper Section 6.2: "The proposed back-projection algorithm and CUDA
// implementation can be applied in a number of iterative solvers (i.e. ART,
// MLEM, MBIR), which are popular methodologies in medical imaging for low
// dose image reconstruction." This module provides those solvers:
//
//   * SART  (Andersen & Kak 1984)    — relaxed, view-by-view updates,
//   * OS-SART                         — ordered subsets of views,
//   * MLEM  (Shepp & Vardi 1982)      — multiplicative EM for emission-style
//                                       data (requires non-negative input).
//
// The forward operator A is the ray-driven projector (src/projector); the
// transpose-like operator B is an *unweighted* voxel-driven back-projection
// (bilinear interpolation at the projected detector position, no FDK 1/z^2
// weight — iterative methods normalize explicitly instead). Both row and
// column normalizations are computed numerically from the operators
// themselves (A*1 and B*1), so the pair need not be an exact adjoint.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/image.h"
#include "common/thread_pool.h"
#include "common/volume.h"
#include "geometry/cbct.h"

namespace ifdk::iterative {

struct IterOptions {
  int iterations = 10;
  /// SART relaxation factor in (0, 2).
  double lambda = 0.9;
  /// Number of ordered subsets (1 = classic SART; >1 = OS-SART).
  int subsets = 1;
  /// Ray-marching step as a fraction of the voxel pitch.
  double step_fraction = 0.5;
  ThreadPool* pool = nullptr;
  /// Called after every full iteration with (iteration, current volume).
  std::function<void(int, const Volume&)> on_iteration;
};

/// Unweighted voxel-driven back-projection of a single view into `volume`
/// (accumulates). Exposed because it is the B operator of the solvers and
/// independently unit-tested.
void backproject_unweighted(const geo::CbctGeometry& geometry,
                            const Image2D& view, double beta, Volume& volume,
                            ThreadPool* pool = nullptr);

/// SART / OS-SART reconstruction from `projections` (one per gantry angle).
Volume sart(const geo::CbctGeometry& geometry,
            std::span<const Image2D> projections, const IterOptions& options);

/// ART (Gordon/Bender/Herman 1970): the fully sequential limit of OS-SART
/// with one view per subset — the first of the §6.2 solver family.
Volume art(const geo::CbctGeometry& geometry,
           std::span<const Image2D> projections, IterOptions options);

/// MLEM reconstruction; projections must be non-negative.
Volume mlem(const geo::CbctGeometry& geometry,
            std::span<const Image2D> projections, const IterOptions& options);

/// Root-mean-square projection-space residual |A x - p| / sqrt(N), a
/// convergence diagnostic used by tests and examples.
double residual_rmse(const geo::CbctGeometry& geometry, const Volume& volume,
                     std::span<const Image2D> projections,
                     double step_fraction = 0.5, ThreadPool* pool = nullptr);

}  // namespace ifdk::iterative
