// Distributed iterative reconstruction (SART / OS-SART / MLEM) on the
// execution engine — the second workload of the engine layer, next to FDK.
//
// Decomposition: views are sharded across ranks by the SAME column/row
// projection assignment the FDK plan uses (DecompositionPlan::
// projection_shard), while the volume estimate is replicated on every rank.
// Each sweep, a rank forward-projects its owned views, accumulates the
// back-projected correction locally in ascending view order, and the
// partial corrections are summed with the segmented tree ireduce + bcast
// (one volume all-reduce per subset). The residual norm is all-reduced once
// per iteration, so the early-stop decision is rank-consistent by
// construction — every rank compares the identical reduced value.
//
// Parity contract (tests/test_distributed_iterative.cpp): on one rank the
// owned-view order and every update expression match the single-node
// solvers in iterative.h exactly, so P = 1 results are BITWISE identical to
// sart()/mlem(). On P > 1 ranks the all-reduce folds rank partials in a
// fixed deterministic order that differs from the sequential view order, so
// results are deterministic but only tolerance-equal to single node. The B
// operator is the solvers' unweighted back-projection (not the FDK-weighted
// Algorithm-4 kernel) precisely so this contract is checkable.
#pragma once

#include <string>
#include <vector>

#include "common/timer.h"
#include "geometry/cbct.h"
#include "ifdk/job.h"
#include "ifdk/plan.h"
#include "perfmodel/model.h"
#include "pfs/pfs.h"

namespace ifdk::iterative {

/// Result of one distributed iterative reconstruction.
struct IterStats {
  /// The resolved rank grid (the plan's; sharding uses its view shards).
  perfmodel::GridShape grid;
  /// Solver family name ("sart" / "os-sart" / "mlem").
  std::string algorithm;
  /// Iterations actually run (< IterParams::iterations on early stop).
  int iterations_run = 0;
  /// All-reduced residual RMSE per iteration, measured from the forward
  /// projections of that iteration's sweep (i.e. the iterate each subset
  /// sweep started from). Identical on every rank.
  std::vector<double> residual_rmse;
  /// Per-stage wall seconds, per-stage maximum across ranks
  /// (load / normalize / forward / backproject / allreduce / update / store).
  StageTimer wall;
  /// End-to-end wall seconds (slowest rank).
  double wall_total = 0;
  /// iterations_run / wall_total (0 when wall_total is 0).
  double iterations_per_second = 0;
};

/// Runs one iterative job (`job.workload` must be kIterative) on
/// `options.ranks` engine ranks: projections are read from
/// `<job.input_prefix><s>`, the converged volume's slices are written by
/// rank 0 to `<job.output_prefix><k>`. The job's geometry override (else
/// `geometry`) is decomposed by the same DecompositionPlan the FDK runtime
/// uses; per-iteration collective traffic is asserted against the plan's
/// iter_* tag budgets. Throws ConfigError on invalid options/job,
/// DeviceOutOfMemory when the replicated-volume working set exceeds the
/// device, and IoError on storage failures.
IterStats run_iterative(const geo::CbctGeometry& geometry,
                        pfs::ParallelFileSystem& fs,
                        const IfdkOptions& options, const JobSpec& job);

}  // namespace ifdk::iterative
