// Wire-level iterative reconstruction parameters.
//
// IterParams is the *request* vocabulary for iterative jobs: the subset of
// IterOptions (iterative.h) that travels inside a JobSpec through the
// service front door and the streaming plan layer. It is header-only so
// ifdk/job.h can embed it without a link edge from the framework layer to
// the iterative layer (which sits ABOVE ifdk in the build graph — the
// distributed solver consumes the plan layer).
#pragma once

#include <string>

#include "common/error.h"

namespace ifdk::iterative {

/// Which solver family a distributed iterative job runs. The arithmetic of
/// each matches the single-node solvers in iterative.h exactly (the parity
/// contract tests/test_distributed_iterative.cpp pins).
enum class Algorithm {
  kSart,    ///< relaxed SART: one full-view sweep per iteration
  kOsSart,  ///< ordered-subsets SART: `subsets` sweeps per iteration
  kMlem,    ///< multiplicative EM (non-negative data; subsets must be 1)
};

/// Human-readable solver name ("sart" / "os-sart" / "mlem") for logs,
/// bench JSON, and error messages.
inline const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSart:
      return "sart";
    case Algorithm::kOsSart:
      return "os-sart";
    case Algorithm::kMlem:
      return "mlem";
  }
  return "?";
}

/// Solver parameters of one iterative job, validated at admission exactly
/// like the geometric fields of a JobSpec.
struct IterParams {
  /// Solver family; governs which of the constraints below apply.
  Algorithm algorithm = Algorithm::kSart;
  /// Full iterations (sweeps over all subsets). At least 1.
  int iterations = 10;
  /// SART relaxation factor in (0, 2). Ignored by MLEM.
  double lambda = 0.9;
  /// Ordered subsets: 1 for kSart/kMlem, >= 2 for kOsSart.
  int subsets = 1;
  /// Ray-marching step of the forward projector, in (0, 1] voxel pitches.
  double step_fraction = 0.5;
  /// Early-stop threshold on the all-reduced residual RMSE; 0 disables.
  /// Every rank sees the identical reduced value, so the stop decision is
  /// rank-consistent by construction.
  double stop_rmse = 0;

  /// Validates the parameter ranges above; throws ConfigError naming the
  /// offending field, prefixed with "volume N: " when `volume_index >= 0`
  /// (the plan layer's convention). Called by JobSpec::validate for
  /// iterative jobs.
  void validate(int volume_index = -1) const {
    const std::string prefix =
        volume_index >= 0 ? "volume " + std::to_string(volume_index) + ": "
                          : std::string{};
    if (iterations < 1) {
      throw ConfigError(prefix + "iterative iterations (" +
                        std::to_string(iterations) + ") must be at least 1");
    }
    if (subsets < 1) {
      throw ConfigError(prefix + "iterative subsets (" +
                        std::to_string(subsets) + ") must be at least 1");
    }
    if (!(lambda > 0 && lambda < 2)) {
      throw ConfigError(prefix + "iterative lambda (" +
                        std::to_string(lambda) + ") must lie in (0, 2)");
    }
    if (!(step_fraction > 0 && step_fraction <= 1)) {
      throw ConfigError(prefix + "iterative step_fraction (" +
                        std::to_string(step_fraction) +
                        ") must lie in (0, 1]");
    }
    if (stop_rmse < 0) {
      throw ConfigError(prefix + "iterative stop_rmse (" +
                        std::to_string(stop_rmse) + ") must be >= 0");
    }
    if (algorithm == Algorithm::kOsSart && subsets < 2) {
      throw ConfigError(prefix +
                        "os-sart requires at least 2 subsets (subsets=" +
                        std::to_string(subsets) + "); use sart for 1");
    }
    if (algorithm == Algorithm::kMlem && subsets != 1) {
      throw ConfigError(prefix + "mlem does not take ordered subsets "
                                 "(subsets=" +
                        std::to_string(subsets) + ")");
    }
  }
};

}  // namespace ifdk::iterative
